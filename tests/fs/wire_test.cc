// Tests for the honest-wire transport layer: piggybacking, batching,
// RegisterServer validation, and end-to-end ledger/critical-path
// reconciliation under the contended network model. The off-mode tests pin
// the legacy behavior (ledger-only RPCs stay free) that every committed
// baseline depends on.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "src/fs/cluster.h"
#include "src/fs/counters.h"
#include "src/fs/net.h"
#include "src/fs/recovery.h"
#include "src/fs/rpc.h"
#include "src/obs/observability.h"
#include "src/workload/generator.h"

namespace sprite {
namespace {

// ---------------------------------------------------------------------------
// RegisterServer validation (transport-layer bug sweep).

TEST(WireTest, RegisterServerValidatesAgainstExpectedCount) {
  RpcTransport transport;
  transport.SetExpectedServers(2);
  EXPECT_NO_THROW(transport.RegisterServer(0, nullptr));
  EXPECT_NO_THROW(transport.RegisterServer(1, nullptr));
  // Regression: an out-of-range id used to silently grow the server table,
  // so a typo'd id was absorbed instead of reported.
  EXPECT_THROW(transport.RegisterServer(2, nullptr), std::invalid_argument);
  EXPECT_THROW(transport.RegisterServer(100, nullptr), std::invalid_argument);
}

TEST(WireTest, RegisterServerStaysPermissiveWithoutExpectedCount) {
  // Bare test rigs that never call SetExpectedServers keep the old
  // resize-on-demand behavior.
  RpcTransport transport;
  EXPECT_NO_THROW(transport.RegisterServer(7, nullptr));
}

// ---------------------------------------------------------------------------
// Honest wire: charged control exchanges and piggybacking.

TEST(WireTest, DefaultModeKeepsControlRpcsFree) {
  RpcTransport transport(NetworkConfig{}, RpcConfig{});
  EXPECT_EQ(transport.Call(RpcKind::kGetAttr, 0, 0, 0, 0), 0);
  const RpcLedger& ledger = transport.ledger();
  EXPECT_EQ(ledger.stat(RpcKind::kGetAttr).net_time, 0);
  EXPECT_EQ(ledger.piggybacked_ops, 0);
  EXPECT_EQ(ledger.charged_control_ops, 0);
  EXPECT_EQ(ledger.batched_ops, 0);
  EXPECT_EQ(transport.network()->rpc_count(), 0);
}

TEST(WireTest, HonestWireChargesIsolatedControlRpcs) {
  RpcConfig rpc;
  rpc.honest_wire = true;
  RpcTransport transport(NetworkConfig{}, rpc);
  const SimDuration expected = Network(NetworkConfig{}).RpcTime(kControlRpcBytes);
  // No recent exchange on the (0,0) pair: the getattr pays a real
  // control-sized round trip.
  EXPECT_EQ(transport.Call(RpcKind::kGetAttr, 0, 0, 0, 0), expected);
  const RpcLedger& ledger = transport.ledger();
  EXPECT_EQ(ledger.stat(RpcKind::kGetAttr).net_time, expected);
  EXPECT_EQ(ledger.charged_control_ops, 1);
  EXPECT_EQ(ledger.piggybacked_ops, 0);
  EXPECT_EQ(transport.network()->rpc_count(), 1);
}

TEST(WireTest, PiggybackRidesARecentExchange) {
  RpcConfig rpc;
  rpc.honest_wire = true;  // default window: 50 ms
  RpcTransport transport(NetworkConfig{}, rpc);
  // A charged open exchange establishes the window on pair (0,0).
  const SimDuration open_latency =
      transport.Call(RpcKind::kOpen, 0, 0, kControlRpcBytes, 0);
  ASSERT_GT(open_latency, 0);
  // Inside the window: the control op rides for free.
  EXPECT_EQ(transport.Call(RpcKind::kGetAttr, 0, 0, 0,
                           open_latency + 10 * kMillisecond),
            0);
  EXPECT_EQ(transport.ledger().piggybacked_ops, 1);
  // A different client pair never saw an exchange: it pays.
  EXPECT_GT(transport.Call(RpcKind::kGetAttr, 1, 0, 0,
                           open_latency + 10 * kMillisecond),
            0);
  EXPECT_EQ(transport.ledger().charged_control_ops, 1);
  // Outside the window on the original pair: pays again, and that charged
  // exchange re-opens the window for the op right behind it.
  const SimTime late = open_latency + 200 * kMillisecond;
  const SimDuration charged = transport.Call(RpcKind::kGetAttr, 0, 0, 0, late);
  EXPECT_GT(charged, 0);
  EXPECT_EQ(transport.Call(RpcKind::kDelete, 0, 0, 0, late + charged + 1), 0);
  EXPECT_EQ(transport.ledger().piggybacked_ops, 2);
  EXPECT_EQ(transport.ledger().charged_control_ops, 2);
}

// ---------------------------------------------------------------------------
// Batching: coalescing, window expiry, and flush accounting.

TEST(WireTest, BatchingCoalescesControlRpcsIntoOneExchange) {
  RpcConfig rpc;
  rpc.batching = true;
  rpc.batch_max_ops = 4;
  RpcTransport transport(NetworkConfig{}, rpc);
  // Three deferred ops: nothing on the wire yet, callers see zero latency.
  EXPECT_EQ(transport.Call(RpcKind::kGetAttr, 0, 0, 0, 0), 0);
  EXPECT_EQ(transport.Call(RpcKind::kCreate, 0, 0, 0, 1 * kMillisecond), 0);
  EXPECT_EQ(transport.Call(RpcKind::kDelete, 0, 0, 0, 2 * kMillisecond), 0);
  EXPECT_EQ(transport.network()->rpc_count(), 0);
  // The fourth fills the batch; its caller absorbs the flush: one wire
  // exchange carrying four control-sized payloads.
  const SimDuration flush =
      transport.Call(RpcKind::kTruncate, 0, 0, 0, 3 * kMillisecond);
  EXPECT_EQ(flush, Network(NetworkConfig{}).RpcTime(4 * kControlRpcBytes));
  EXPECT_EQ(transport.network()->rpc_count(), 1);
  const RpcLedger& ledger = transport.ledger();
  EXPECT_EQ(ledger.batched_ops, 4);
  EXPECT_EQ(ledger.batches, 1);
  // The flush lands on the kBatch ledger row; the member ops keep their
  // own rows with zero net time (no double-charging).
  EXPECT_EQ(ledger.stat(RpcKind::kBatch).calls, 1);
  EXPECT_EQ(ledger.stat(RpcKind::kBatch).net_time, flush);
  EXPECT_EQ(ledger.stat(RpcKind::kBatch).payload_bytes, 0);
  EXPECT_EQ(ledger.stat(RpcKind::kGetAttr).net_time, 0);
  EXPECT_EQ(ledger.stat(RpcKind::kTruncate).net_time, 0);
}

TEST(WireTest, BatchWindowExpiryFlushesLazily) {
  RpcConfig rpc;
  rpc.batching = true;  // default window: 20 ms, max 8 ops
  RpcTransport transport(NetworkConfig{}, rpc);
  EXPECT_EQ(transport.Call(RpcKind::kGetAttr, 0, 0, 0, 0), 0);
  EXPECT_EQ(transport.Call(RpcKind::kGetAttr, 0, 0, 0, 5 * kMillisecond), 0);
  // 30 ms later the pending batch is stale: the next batched op pays the
  // flush of the old batch and opens a new one holding itself.
  const SimDuration flush =
      transport.Call(RpcKind::kGetAttr, 0, 0, 0, 30 * kMillisecond);
  EXPECT_EQ(flush, Network(NetworkConfig{}).RpcTime(2 * kControlRpcBytes));
  EXPECT_EQ(transport.ledger().batches, 1);
  EXPECT_EQ(transport.ledger().batched_ops, 3);
  EXPECT_EQ(transport.network()->rpc_count(), 1);
}

TEST(WireTest, FlushAllWireDrainsPendingBatches) {
  RpcConfig rpc;
  rpc.batching = true;
  RpcTransport transport(NetworkConfig{}, rpc);
  transport.Call(RpcKind::kGetAttr, 0, 0, 0, 0);
  transport.Call(RpcKind::kGetAttr, 1, 1, 0, 0);
  EXPECT_EQ(transport.network()->rpc_count(), 0);
  // Measurement boundary: both per-pair batches go out.
  transport.FlushAllWire(10 * kMillisecond);
  EXPECT_EQ(transport.ledger().batches, 2);
  EXPECT_EQ(transport.network()->rpc_count(), 2);
  // Idempotent when nothing is pending.
  transport.FlushAllWire(20 * kMillisecond);
  EXPECT_EQ(transport.ledger().batches, 2);
}

// ---------------------------------------------------------------------------
// End-to-end: full workload runs through the Generator.

WorkloadParams QuickParams() {
  WorkloadParams params;
  params.num_users = 8;
  params.seed = 42;
  return params;
}

ClusterConfig WireCluster() {
  ClusterConfig config;
  config.num_clients = 4;
  config.num_servers = 2;
  return config;
}

TEST(WireTest, OffModeWorkloadLeavesWireCountersUntouched) {
  Generator generator(QuickParams(), WireCluster());
  generator.Run(10 * kMinute, 2 * kMinute);
  const RpcLedger& ledger = generator.cluster().rpc_ledger();
  EXPECT_EQ(ledger.piggybacked_ops, 0);
  EXPECT_EQ(ledger.charged_control_ops, 0);
  EXPECT_EQ(ledger.batched_ops, 0);
  EXPECT_EQ(ledger.batches, 0);
  EXPECT_EQ(ledger.stat(RpcKind::kBatch).calls, 0);
  // Ledger-only kinds stay free, and the formatted ledger shows no wire
  // footer — exactly the committed-baseline shape.
  EXPECT_EQ(ledger.stat(RpcKind::kGetAttr).net_time, 0);
  const std::string formatted = FormatRpcLedger(ledger);
  EXPECT_EQ(formatted.find("wire:"), std::string::npos);
}

TEST(WireTest, LedgerReconcilesWithCriticalPathUnderBatching) {
  ClusterConfig config = WireCluster();
  config.rpc.honest_wire = true;
  config.rpc.batching = true;
  config.network.contention = true;
  config.observability.critical_path = true;
  Generator generator(QuickParams(), config);
  generator.Run(10 * kMinute, 2 * kMinute);
  const RpcLedger& ledger = generator.cluster().rpc_ledger();
  EXPECT_GT(ledger.batches, 0);
  EXPECT_GT(ledger.batched_ops, ledger.batches);
  const Observability* obs = generator.cluster().observability();
  ASSERT_NE(obs, nullptr);
  // Every batch flush feeds the critical-path collector the same net /
  // queue / service terms it charges to the ledger, so the reconciliation
  // in the report must be microsecond-exact.
  const std::string report = FormatCriticalPath(obs->critical_path(), ledger);
  EXPECT_EQ(report.find("MISMATCH"), std::string::npos) << report;
}

RpcLedger RunShadowBatchedFailover() {
  ClusterConfig config = WireCluster();
  config.rpc.batching = true;
  config.replication.enabled = true;
  Generator generator(QuickParams(), config);
  ApplyFaultSchedule(generator.cluster(),
                     ParseFaultSchedule("crash:0@240+30,crash:1@420+20"));
  generator.Run(10 * kMinute, 2 * kMinute);
  return generator.cluster().rpc_ledger();
}

TEST(WireTest, ShadowBatchStreamIsDeterministicUnderFailover) {
  // The replication shadow stream (kShadowOpen/Write/Close) is batchable;
  // with servers crashing and failing over mid-run, two identical runs must
  // still produce identical ledgers, batch counts included.
  const RpcLedger a = RunShadowBatchedFailover();
  const RpcLedger b = RunShadowBatchedFailover();
  EXPECT_TRUE(a == b);
  EXPECT_GT(a.batches, 0);
  // The shadow stream actually went through the batch path: its rows carry
  // no direct wire time.
  EXPECT_EQ(a.stat(RpcKind::kShadowWrite).net_time, 0);
}

}  // namespace
}  // namespace sprite
