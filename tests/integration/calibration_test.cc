// Calibration regression tests.
//
// These pin the reproduction's headline numbers to generous bands around
// the paper's reported values, so future changes to the workload model or
// the simulator cannot silently drift away from the published shapes. Each
// band is wide enough to absorb seed-to-seed noise but tight enough to
// catch a real regression (e.g. losing the delayed-write savings or the
// access-mix balance).

#include <gtest/gtest.h>

#include "src/analysis/accesses.h"
#include "src/analysis/activity.h"
#include "src/analysis/cache_report.h"
#include "src/analysis/lifetimes.h"
#include "src/analysis/patterns.h"
#include "src/trace/summary.h"
#include "src/workload/generator.h"

namespace sprite {
namespace {

class CalibrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadParams params;
    params.num_users = 16;
    params.seed = 1991;
    ClusterConfig cluster;
    cluster.num_clients = 20;  // idle pool for migration
    cluster.num_servers = 4;
    generator_ = new Generator(params, cluster);
    trace_ = new TraceLog(generator_->Run(75 * kMinute, 25 * kMinute));
    accesses_ = new std::vector<Access>(ExtractAccesses(*trace_));
  }
  static void TearDownTestSuite() {
    delete accesses_;
    delete trace_;
    delete generator_;
    accesses_ = nullptr;
    trace_ = nullptr;
    generator_ = nullptr;
  }

  static Generator* generator_;
  static TraceLog* trace_;
  static std::vector<Access>* accesses_;
};

Generator* CalibrationTest::generator_ = nullptr;
TraceLog* CalibrationTest::trace_ = nullptr;
std::vector<Access>* CalibrationTest::accesses_ = nullptr;

TEST_F(CalibrationTest, AccessMixNearPaper) {
  const AccessPatternStats stats = ComputeAccessPatterns(*accesses_);
  // Paper: 88% (82-94) read-only, 11% (6-17) write-only, ~1% read-write.
  EXPECT_GT(stats.read_only.accesses_fraction, 0.70);
  EXPECT_LT(stats.read_only.accesses_fraction, 0.95);
  EXPECT_GT(stats.write_only.accesses_fraction, 0.05);
  EXPECT_LT(stats.write_only.accesses_fraction, 0.30);
  EXPECT_LT(stats.read_write.accesses_fraction, 0.05);
}

TEST_F(CalibrationTest, SequentialityNearPaper) {
  const AccessPatternStats stats = ComputeAccessPatterns(*accesses_);
  // Paper: ~78% of read-only accesses whole-file; >90% of RO bytes
  // sequential.
  EXPECT_GT(stats.read_only.whole_file, 0.65);
  EXPECT_GT(stats.read_only.whole_file_bytes + stats.read_only.other_sequential_bytes, 0.90);
  EXPECT_LT(stats.read_only.random, 0.10);
}

TEST_F(CalibrationTest, OpenDurationsNearPaper) {
  const WeightedSamples durations = ComputeOpenDurations(*accesses_);
  // Paper: ~75% of opens < 0.25 s.
  const double f = durations.FractionAtOrBelow(0.25);
  EXPECT_GT(f, 0.60);
  EXPECT_LT(f, 0.95);
}

TEST_F(CalibrationTest, LifetimesNearPaper) {
  const LifetimeCurves lifetimes = ComputeLifetimes(*trace_);
  // Paper: 65-80% of files die within 30 s, but only 4-27% of bytes.
  const double files = lifetimes.by_files.FractionAtOrBelow(30.0);
  const double bytes = lifetimes.by_bytes.FractionAtOrBelow(30.0);
  EXPECT_GT(files, 0.5);
  EXPECT_LT(files, 0.9);
  EXPECT_LT(bytes, 0.5);
  EXPECT_LT(bytes, files) << "short-lived files must be short";
}

TEST_F(CalibrationTest, ThroughputNearPaper) {
  const ActivityReport activity = ComputeActivity(*trace_, 10 * kMinute);
  // Paper: 8.0 KB/s per active user over 10-minute intervals (20x BSD).
  const double kbps = activity.all_users.throughput_per_user.mean() / 1024.0;
  EXPECT_GT(kbps, 3.0);
  EXPECT_LT(kbps, 25.0);
}

TEST_F(CalibrationTest, BurstinessShape) {
  const ActivityReport ten_min = ComputeActivity(*trace_, 10 * kMinute);
  const ActivityReport ten_sec = ComputeActivity(*trace_, 10 * kSecond);
  // 10-second rates must exceed 10-minute rates substantially (paper ~6x).
  EXPECT_GT(ten_sec.all_users.throughput_per_user.mean(),
            1.5 * ten_min.all_users.throughput_per_user.mean());
  // Peak bursts dwarf the average (paper: 458 KB/s peak vs 8 KB/s average).
  EXPECT_GT(ten_min.all_users.peak_user_throughput,
            3.0 * ten_min.all_users.throughput_per_user.mean());
}

TEST_F(CalibrationTest, CacheSizeNearPaper) {
  const CacheSizeReport report =
      ComputeCacheSizeReport(generator_->cluster().cache_size_samples());
  // Paper: ~7 MB mean, one-quarter to one-third of 24 MB memory.
  EXPECT_GT(report.mean_bytes, 3.0 * kMegabyte);
  EXPECT_LT(report.mean_bytes, 12.0 * kMegabyte);
}

TEST_F(CalibrationTest, CacheEffectivenessNearPaper) {
  const EffectivenessReport report =
      ComputeEffectivenessReport(generator_->cluster().AggregateCacheCounters());
  // Paper: 41.4% read misses (sigma 26.9), ~88% writeback traffic, rare
  // write fetches, ~29% paging misses.
  // The paper's per-machine dispersion is enormous (sigma 26.9, max 97%),
  // so the band here is wide.
  EXPECT_GT(report.read_miss_ratio, 0.2);
  EXPECT_LT(report.read_miss_ratio, 0.85);
  EXPECT_GT(report.writeback_traffic, 0.7);
  EXPECT_LT(report.writeback_traffic, 1.2);
  EXPECT_LT(report.write_fetch_ratio, 0.05);
  EXPECT_GT(report.paging_read_miss_ratio, 0.1);
  EXPECT_LT(report.paging_read_miss_ratio, 0.5);
  // The delayed-write savings: roughly one-tenth of new bytes die first.
  EXPECT_GT(report.cancelled_fraction, 0.02);
  EXPECT_LT(report.cancelled_fraction, 0.30);
}

TEST_F(CalibrationTest, ServerTrafficShapeNearPaper) {
  const ServerCounters server = generator_->cluster().AggregateServerCounters();
  const TrafficCounters raw = generator_->cluster().AggregateTrafficCounters();
  const ServerTrafficReport report = ComputeServerTrafficReport(server);
  // Paper: paging ~35% of server bytes; caches filter ~50% of raw traffic;
  // write-shared pass-through ~1%.
  EXPECT_GT(report.paging_fraction(), 0.15);
  EXPECT_LT(report.paging_fraction(), 0.55);
  EXPECT_LT(report.shared, 0.05);
  const double filter = ComputeFilterRatio(raw, server);
  EXPECT_GT(filter, 0.35);
  EXPECT_LT(filter, 0.85);
}

TEST_F(CalibrationTest, ConsistencyActionsNearPaper) {
  const ConsistencyActionReport report =
      ComputeConsistencyActionReport(generator_->cluster().AggregateServerCounters());
  // Paper: write-sharing 0.34% (0.18-0.56) of opens; recalls 1.7%
  // (0.79-3.35).
  EXPECT_GT(report.write_sharing_fraction, 0.0005);
  EXPECT_LT(report.write_sharing_fraction, 0.02);
  EXPECT_GT(report.recall_fraction, 0.003);
  EXPECT_LT(report.recall_fraction, 0.06);
}

TEST_F(CalibrationTest, LargeFilesCarryTheBytes) {
  const FileSizeCurves sizes = ComputeFileSizes(*accesses_);
  // Paper Fig 2: most accesses are small files, most bytes big files.
  EXPECT_GT(sizes.by_accesses.FractionAtOrBelow(10 * kKilobyte), 0.6);
  EXPECT_GT(1.0 - sizes.by_bytes.FractionAtOrBelow(kMegabyte), 0.3);
}

TEST_F(CalibrationTest, RunLengthShape) {
  const RunLengthCurves runs = ComputeRunLengths(*accesses_);
  // Paper Fig 1: ~80% of runs < 10 KB; >= 10% of bytes in runs > 1 MB.
  const double short_runs = runs.by_runs.FractionAtOrBelow(10 * kKilobyte);
  EXPECT_GT(short_runs, 0.65);
  EXPECT_LT(short_runs, 0.95);
  EXPECT_GT(1.0 - runs.by_bytes.FractionAtOrBelow(kMegabyte), 0.10);
}

}  // namespace
}  // namespace sprite
