// End-to-end runs of the paper-motivated extension configurations: the full
// workload generator driving clusters with the log-structured server
// backend, readahead, bypass, and crash injection.

#include <gtest/gtest.h>

#include "src/analysis/cache_report.h"
#include "src/workload/generator.h"

namespace sprite {
namespace {

WorkloadParams SmallParams(uint64_t seed) {
  WorkloadParams params;
  params.num_users = 6;
  params.seed = seed;
  return params;
}

ClusterConfig SmallCluster() {
  ClusterConfig config;
  config.num_clients = 8;
  config.num_servers = 2;
  return config;
}

TEST(ExtensionsPipelineTest, LogStructuredServerRunsFullWorkload) {
  ClusterConfig config = SmallCluster();
  config.server.disk_layout = DiskLayout::kLogStructured;
  Generator generator(SmallParams(5), config);
  const TraceLog trace = generator.Run(30 * kMinute, 10 * kMinute);
  EXPECT_FALSE(trace.empty());
  int64_t log_bytes = 0;
  for (int s = 0; s < generator.cluster().num_servers(); ++s) {
    const Server& server = generator.cluster().server(static_cast<ServerId>(s));
    ASSERT_NE(server.segment_log(), nullptr);
    log_bytes += server.segment_log()->user_bytes_written();
    EXPECT_GE(server.segment_log()->WriteCost(), 1.0);
    EXPECT_GE(server.segment_log()->Utilization(), 0.0);
    EXPECT_LE(server.segment_log()->Utilization(), 1.0 + 1e-9);
  }
  EXPECT_GT(log_bytes, 0) << "writebacks must have reached the log";
}

TEST(ExtensionsPipelineTest, LogLayoutDoesNotChangeClientVisibleBehavior) {
  // The disk layout is below the caches: the trace (client-visible events)
  // must be identical either way.
  auto run = [](DiskLayout layout) {
    ClusterConfig config = SmallCluster();
    config.server.disk_layout = layout;
    Generator generator(SmallParams(6), config);
    return generator.Run(20 * kMinute);
  };
  EXPECT_EQ(run(DiskLayout::kUpdateInPlace), run(DiskLayout::kLogStructured));
}

TEST(ExtensionsPipelineTest, ReadaheadAndBypassRunFullWorkload) {
  ClusterConfig config = SmallCluster();
  config.client.readahead_blocks = 4;
  config.client.large_file_bypass_bytes = 2 * kMegabyte;
  Generator generator(SmallParams(7), config);
  generator.Run(30 * kMinute, 10 * kMinute);
  const CacheCounters counters = generator.cluster().AggregateCacheCounters();
  EXPECT_GT(counters.prefetch_fetches, 0);
  EXPECT_GT(counters.prefetch_useful, 0);
  EXPECT_LE(counters.prefetch_useful, counters.prefetch_fetches);
  EXPECT_GT(counters.bypass_read_bytes, 0);
}

TEST(ExtensionsPipelineTest, CrashInjectionDuringWorkload) {
  ClusterConfig config = SmallCluster();
  Generator generator(SmallParams(8), config);
  // Crash a busy (user-homed) client every 90 simulated seconds: over ~25
  // crashes some dirty data is virtually certain to be in flight.
  Rng rng(3);
  PeriodicTask crasher(generator.queue(), 90 * kSecond, 90 * kSecond, [&](SimTime now) {
    generator.cluster().CrashClient(static_cast<ClientId>(rng.NextBelow(6)), now);
  });
  generator.Run(40 * kMinute);
  const CacheCounters counters = generator.cluster().AggregateCacheCounters();
  EXPECT_GE(counters.crashes, 20);
  EXPECT_GT(counters.bytes_lost_in_crashes, 0);
  EXPECT_EQ(counters.bytes_recovered_from_nvram, 0);
}

TEST(ExtensionsPipelineTest, NvramEliminatesCrashLoss) {
  ClusterConfig config = SmallCluster();
  config.client.nvram = true;
  Generator generator(SmallParams(8), config);
  Rng rng(3);
  PeriodicTask crasher(generator.queue(), 90 * kSecond, 90 * kSecond, [&](SimTime now) {
    generator.cluster().CrashClient(static_cast<ClientId>(rng.NextBelow(6)), now);
  });
  generator.Run(40 * kMinute);
  const CacheCounters counters = generator.cluster().AggregateCacheCounters();
  EXPECT_EQ(counters.bytes_lost_in_crashes, 0);
  EXPECT_GT(counters.bytes_recovered_from_nvram, 0);
}

}  // namespace
}  // namespace sprite
