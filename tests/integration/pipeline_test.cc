// Integration tests: the whole pipeline — workload generator -> cluster
// simulation -> trace -> analyses -> reports — with cross-module
// consistency checks (the same quantity computed two ways must agree).

#include <gtest/gtest.h>

#include "src/analysis/accesses.h"
#include "src/analysis/activity.h"
#include "src/analysis/cache_report.h"
#include "src/analysis/lifetimes.h"
#include "src/analysis/patterns.h"
#include "src/consistency/overhead.h"
#include "src/consistency/polling.h"
#include "src/trace/codec.h"
#include "src/trace/merge.h"
#include "src/trace/summary.h"
#include "src/workload/generator.h"

namespace sprite {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadParams params;
    params.num_users = 10;
    params.seed = 31415;
    ClusterConfig cluster;
    cluster.num_clients = 10;
    cluster.num_servers = 3;
    generator_ = new Generator(params, cluster);
    trace_ = new TraceLog(generator_->Run(kHour, 15 * kMinute));
  }
  static void TearDownTestSuite() {
    delete trace_;
    delete generator_;
    trace_ = nullptr;
    generator_ = nullptr;
  }

  static Generator* generator_;
  static TraceLog* trace_;
};

Generator* PipelineTest::generator_ = nullptr;
TraceLog* PipelineTest::trace_ = nullptr;

TEST_F(PipelineTest, TraceIsWellFormed) {
  ASSERT_FALSE(trace_->empty());
  EXPECT_TRUE(IsTimeOrdered(*trace_));
  for (const Record& r : *trace_) {
    ASSERT_GE(r.time, 15 * kMinute) << "warmup records must have been discarded";
    ASSERT_GE(r.run_read_bytes, 0);
    ASSERT_GE(r.run_write_bytes, 0);
    ASSERT_GE(r.io_bytes, 0);
    ASSERT_GE(r.file_size, 0);
  }
}

TEST_F(PipelineTest, CodecRoundTripsFullWorkloadTrace) {
  const std::string bytes = EncodeTrace(*trace_);
  EXPECT_EQ(DecodeTrace(bytes), *trace_);
  // And the encoding is compact (well under the in-memory footprint).
  EXPECT_LT(bytes.size(), trace_->size() * sizeof(Record) / 2);
}

TEST_F(PipelineTest, AccessesMatchCloseEvents) {
  const TraceSummary summary = Summarize(*trace_);
  const auto accesses = ExtractAccesses(*trace_);
  // Every completed access corresponds to a close; a few opens may still be
  // in flight at the cut.
  EXPECT_LE(static_cast<int64_t>(accesses.size()), summary.close_events);
  EXPECT_GE(static_cast<int64_t>(accesses.size()), summary.close_events - 64);
}

TEST_F(PipelineTest, BytesAgreeBetweenSummaryAndAccesses) {
  const TraceSummary summary = Summarize(*trace_);
  const auto accesses = ExtractAccesses(*trace_);
  int64_t access_read = 0;
  int64_t access_write = 0;
  for (const Access& a : accesses) {
    access_read += a.total_read();
    access_write += a.total_write();
  }
  // Access totals exclude shared pass-through I/O (counted separately in the
  // summary) and in-flight handles; they must not exceed the summary and
  // should account for nearly all of it.
  EXPECT_LE(access_read, summary.bytes_read);
  EXPECT_LE(access_write, summary.bytes_written);
  EXPECT_GT(access_read, summary.bytes_read * 9 / 10);
}

TEST_F(PipelineTest, CdfMonotonicityEverywhere) {
  const auto accesses = ExtractAccesses(*trace_);
  const RunLengthCurves runs = ComputeRunLengths(accesses);
  const FileSizeCurves sizes = ComputeFileSizes(accesses);
  const WeightedSamples opens = ComputeOpenDurations(accesses);
  const LifetimeCurves lifetimes = ComputeLifetimes(*trace_);
  for (const WeightedSamples* curve :
       {&runs.by_runs, &runs.by_bytes, &sizes.by_accesses, &sizes.by_bytes, &opens,
        &lifetimes.by_files, &lifetimes.by_bytes}) {
    double previous = 0.0;
    for (double x : {1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8}) {
      const double f = curve->FractionAtOrBelow(x);
      ASSERT_GE(f, previous);
      ASSERT_LE(f, 1.0 + 1e-9);
      previous = f;
    }
    EXPECT_NEAR(curve->FractionAtOrBelow(1e18), 1.0, 1e-9);
  }
}

TEST_F(PipelineTest, ActivityBytesMatchSummary) {
  const TraceSummary summary = Summarize(*trace_);
  const ActivityReport activity = ComputeActivity(*trace_, 10 * kMinute);
  // Sum of per-user-interval throughput * interval length == all bytes
  // (file + dir + shared).
  const double total_bytes =
      activity.all_users.throughput_per_user.sum() * ToSeconds(10 * kMinute);
  const double expected = static_cast<double>(summary.bytes_read + summary.bytes_written +
                                              summary.bytes_dir_read);
  EXPECT_NEAR(total_bytes, expected, expected * 1e-6);
}

TEST_F(PipelineTest, CacheCountersInternallyConsistent) {
  const CacheCounters cache = generator_->cluster().AggregateCacheCounters();
  EXPECT_LE(cache.read_misses, cache.read_ops);
  EXPECT_LE(cache.migrated_read_ops, cache.read_ops);
  EXPECT_LE(cache.migrated_read_misses, cache.read_misses);
  EXPECT_LE(cache.paging_read_misses, cache.paging_read_ops);
  EXPECT_LE(cache.write_fetches, cache.write_ops);
  // Miss traffic is whole blocks: at least one block per miss.
  EXPECT_GE(cache.bytes_read_from_server, cache.read_misses * kBlockSize);
}

TEST_F(PipelineTest, ServerSeesExactlyClientMissAndWritebackFileBytes) {
  const CacheCounters cache = generator_->cluster().AggregateCacheCounters();
  const ServerCounters server = generator_->cluster().AggregateServerCounters();
  // Server file reads = client miss fetches + write fetches (all in whole
  // blocks).
  EXPECT_EQ(server.file_read_bytes, cache.bytes_read_from_server + cache.write_fetch_bytes);
  EXPECT_EQ(server.file_write_bytes, cache.bytes_written_to_server);
}

TEST_F(PipelineTest, TrafficCountersCoverSummaryBytes) {
  const TraceSummary summary = Summarize(*trace_);
  const TrafficCounters traffic = generator_->cluster().AggregateTrafficCounters();
  // Raw cacheable + shared file traffic matches the trace's file bytes up
  // to boundary effects: an access straddling the warmup cut reports its
  // whole run at the first post-cut anchor, while the counters were zeroed
  // exactly at the cut.
  const auto near = [](int64_t a, int64_t b) {
    EXPECT_NEAR(static_cast<double>(a), static_cast<double>(b),
                static_cast<double>(b) * 0.01 + 4096);
  };
  near(traffic.file_read_cacheable + traffic.file_read_shared, summary.bytes_read);
  near(traffic.file_write_cacheable + traffic.file_write_shared, summary.bytes_written);
  near(traffic.dir_read, summary.bytes_dir_read);
}

TEST_F(PipelineTest, ConsistencySimulatorsRunOnRealTrace) {
  const PollingResult p60 = SimulatePolling(*trace_, 60 * kSecond);
  const PollingResult p3 = SimulatePolling(*trace_, 3 * kSecond);
  EXPECT_GE(p60.errors, p3.errors);
  EXPECT_GT(p60.file_opens, 0);

  const OverheadResult sprite = SimulateConsistencyOverhead(*trace_, ConsistencyPolicy::kSprite);
  if (sprite.events_requested > 0) {
    EXPECT_DOUBLE_EQ(sprite.byte_ratio(), 1.0);
  }
}

TEST_F(PipelineTest, SplitAndMergeRoundTrip) {
  // Split the merged trace back into per-server logs and re-merge: must be
  // the identical sequence (server logs preserve relative order).
  std::vector<TraceLog> per_server(4);
  for (const Record& r : *trace_) {
    per_server[r.server % 4].push_back(r);
  }
  const TraceLog remerged = MergeSorted(per_server);
  ASSERT_EQ(remerged.size(), trace_->size());
  EXPECT_TRUE(IsTimeOrdered(remerged));
  const TraceSummary a = Summarize(*trace_);
  const TraceSummary b = Summarize(remerged);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_EQ(a.open_events, b.open_events);
}

TEST_F(PipelineTest, CacheSizesWithinPhysicalMemory) {
  const auto& samples = generator_->cluster().cache_size_samples();
  ASSERT_FALSE(samples.empty());
  for (const auto& s : samples) {
    ASSERT_GE(s.cache_bytes, 0);
    ASSERT_LE(s.cache_bytes, 24 * kMegabyte);
  }
  const CacheSizeReport report = ComputeCacheSizeReport(samples);
  EXPECT_GT(report.mean_bytes, kMegabyte) << "caches should be multi-megabyte";
  EXPECT_LT(report.mean_bytes, 16 * kMegabyte)
      << "VM pressure should keep caches well under full memory";
}

}  // namespace
}  // namespace sprite
