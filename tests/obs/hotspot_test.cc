#include "src/obs/hotspot.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/observability.h"
#include "src/util/units.h"

namespace sprite {
namespace {

// Two-server signal row: server 0 carries `hot_p99` queue wait and ten times
// the homed bytes; server 1 idles. This satisfies both the ratio and the
// placement gate whenever hot_p99 clears the absolute floor.
std::vector<HotspotSignal> SkewedPair(SimDuration hot_p99) {
  std::vector<HotspotSignal> signals(2);
  signals[0].queue_p99 = hot_p99;
  signals[0].bytes_homed = 10 * kMegabyte;
  signals[0].queue_depth = 7;
  signals[1].queue_p99 = 10;
  signals[1].bytes_homed = 1 * kMegabyte;
  return signals;
}

std::vector<HotspotSignal> QuietPair() {
  std::vector<HotspotSignal> signals(2);
  signals[0].queue_p99 = 10;
  signals[0].bytes_homed = 10 * kMegabyte;
  signals[1].queue_p99 = 10;
  signals[1].bytes_homed = 1 * kMegabyte;
  return signals;
}

void ObserveAt(HotspotDetector& det, int window, const std::vector<HotspotSignal>& signals) {
  det.Observe(window * kMinute, (window + 1) * kMinute, signals);
}

TEST(HotspotDetectorTest, SustainedOutlierFlaggedWithCorrectExtent) {
  HotspotDetector det(HotspotConfig{}, 2);
  ObserveAt(det, 0, SkewedPair(10 * kMillisecond));
  ObserveAt(det, 1, SkewedPair(20 * kMillisecond));
  EXPECT_FALSE(det.active(0));  // two hot windows < sustain_windows
  ObserveAt(det, 2, SkewedPair(5 * kMillisecond));
  EXPECT_TRUE(det.active(0));
  EXPECT_FALSE(det.active(1));
  det.Finalize();
  EXPECT_FALSE(det.active(0));
  ASSERT_EQ(det.episodes().size(), 1u);
  const HotspotEpisode& e = det.episodes()[0];
  EXPECT_EQ(e.server, 0);
  EXPECT_EQ(e.start, 0);
  EXPECT_EQ(e.end, 3 * kMinute);
  EXPECT_EQ(e.windows, 3);
  EXPECT_EQ(e.peak_queue_p99, 20 * kMillisecond);
  EXPECT_EQ(e.peak_queue_depth, 7);
  EXPECT_GE(e.peak_homed_ratio, 9.9);
  EXPECT_EQ(det.hot_server_windows(), 3);
  EXPECT_EQ(det.windows_observed(), 3);
}

TEST(HotspotDetectorTest, BriefSpikeIsNotFlagged) {
  HotspotDetector det(HotspotConfig{}, 2);
  ObserveAt(det, 0, SkewedPair(50 * kMillisecond));
  ObserveAt(det, 1, SkewedPair(50 * kMillisecond));
  for (int w = 2; w < 8; ++w) {
    ObserveAt(det, w, QuietPair());
  }
  det.Finalize();
  EXPECT_TRUE(det.episodes().empty());
  EXPECT_EQ(det.hot_server_windows(), 0);
}

TEST(HotspotDetectorTest, AbsoluteFloorSuppressesTinySkew) {
  // 400 us vs 10 us is a 40x ratio, but nobody is actually waiting.
  HotspotDetector det(HotspotConfig{}, 2);
  for (int w = 0; w < 6; ++w) {
    ObserveAt(det, w, SkewedPair(400));
  }
  det.Finalize();
  EXPECT_TRUE(det.episodes().empty());
}

TEST(HotspotDetectorTest, BalancedPlacementGateSuppressesLoadBursts) {
  // Real queue pain, but the bytes are homed evenly: a load burst on a
  // balanced placement, not a placement hot spot.
  HotspotDetector det(HotspotConfig{}, 2);
  std::vector<HotspotSignal> signals(2);
  signals[0].queue_p99 = 100 * kMillisecond;
  signals[0].bytes_homed = 5 * kMegabyte;
  signals[1].queue_p99 = 10;
  signals[1].bytes_homed = 5 * kMegabyte;
  for (int w = 0; w < 6; ++w) {
    ObserveAt(det, w, signals);
  }
  det.Finalize();
  EXPECT_TRUE(det.episodes().empty());
}

TEST(HotspotDetectorTest, StreakToleratesLullsShorterThanCoolWindows) {
  // Bursty pattern hot/quiet/hot/quiet/quiet/hot: the default cool_windows=3
  // bridges one- and two-window lulls, so three hot windows accumulate.
  HotspotDetector det(HotspotConfig{}, 2);
  ObserveAt(det, 0, SkewedPair(10 * kMillisecond));
  ObserveAt(det, 1, QuietPair());
  ObserveAt(det, 2, SkewedPair(10 * kMillisecond));
  ObserveAt(det, 3, QuietPair());
  ObserveAt(det, 4, QuietPair());
  EXPECT_FALSE(det.active(0));
  ObserveAt(det, 5, SkewedPair(10 * kMillisecond));
  EXPECT_TRUE(det.active(0));
  det.Finalize();
  ASSERT_EQ(det.episodes().size(), 1u);
  const HotspotEpisode& e = det.episodes()[0];
  EXPECT_EQ(e.windows, 3);           // hot windows only; lulls are covered
  EXPECT_EQ(e.start, 0);
  EXPECT_EQ(e.end, 6 * kMinute);     // last *hot* window's end
}

TEST(HotspotDetectorTest, LongLullClosesAndReheatingOpensSecondEpisode) {
  HotspotConfig config;
  config.sustain_windows = 2;
  config.cool_windows = 2;
  HotspotDetector det(config, 2);
  int w = 0;
  for (int i = 0; i < 2; ++i) {
    ObserveAt(det, w++, SkewedPair(10 * kMillisecond));
  }
  EXPECT_TRUE(det.active(0));
  for (int i = 0; i < 2; ++i) {
    ObserveAt(det, w++, QuietPair());  // cool_windows quiet windows close it
  }
  EXPECT_FALSE(det.active(0));
  ASSERT_EQ(det.episodes().size(), 1u);
  for (int i = 0; i < 2; ++i) {
    ObserveAt(det, w++, SkewedPair(30 * kMillisecond));
  }
  det.Finalize();
  ASSERT_EQ(det.episodes().size(), 2u);
  EXPECT_EQ(det.episodes()[1].start, 4 * kMinute);
  EXPECT_EQ(det.episodes()[1].peak_queue_p99, 30 * kMillisecond);
}

TEST(HotspotDetectorTest, SingleServerUsesFloorOnly) {
  HotspotDetector det(HotspotConfig{}, 1);
  std::vector<HotspotSignal> signals(1);
  signals[0].queue_p99 = 10 * kMillisecond;
  signals[0].bytes_homed = kMegabyte;
  for (int w = 0; w < 3; ++w) {
    det.Observe(w * kMinute, (w + 1) * kMinute, signals);
  }
  det.Finalize();
  ASSERT_EQ(det.episodes().size(), 1u);
  EXPECT_EQ(det.episodes()[0].server, 0);
}

TEST(HotspotDetectorTest, SameInputsGiveSameEpisodesAfterReset) {
  HotspotDetector det(HotspotConfig{}, 2);
  auto drive = [&det] {
    ObserveAt(det, 0, SkewedPair(10 * kMillisecond));
    ObserveAt(det, 1, QuietPair());
    ObserveAt(det, 2, SkewedPair(20 * kMillisecond));
    ObserveAt(det, 3, SkewedPair(5 * kMillisecond));
    det.Finalize();
  };
  drive();
  ASSERT_EQ(det.episodes().size(), 1u);
  const HotspotEpisode first = det.episodes()[0];
  det.Reset();
  EXPECT_TRUE(det.episodes().empty());
  EXPECT_EQ(det.windows_observed(), 0);
  drive();
  ASSERT_EQ(det.episodes().size(), 1u);
  EXPECT_EQ(det.episodes()[0].start, first.start);
  EXPECT_EQ(det.episodes()[0].end, first.end);
  EXPECT_EQ(det.episodes()[0].windows, first.windows);
  EXPECT_EQ(det.episodes()[0].peak_queue_p99, first.peak_queue_p99);
}

TEST(HotspotDetectorTest, EmitsCountersAndSpanThroughObservability) {
  ObservabilityConfig config;
  config.metrics = true;
  config.tracing = true;
  Observability obs(config);
  HotspotDetector det(HotspotConfig{}, 2);
  det.AttachObservability(&obs);
  for (int w = 0; w < 4; ++w) {
    ObserveAt(det, w, SkewedPair(10 * kMillisecond));
  }
  // Episode still open: Finalize must close it and emit the span.
  EXPECT_TRUE(obs.tracer().spans().empty());
  det.Finalize();
  ASSERT_EQ(obs.tracer().spans().size(), 1u);
  EXPECT_STREQ(obs.tracer().spans()[0].name, "hotspot");
  EXPECT_EQ(obs.tracer().spans()[0].track.pid, ServerTrack(0).pid);
  ASSERT_NE(obs.metrics().FindCounter("hotspot.windows_flagged"), nullptr);
  EXPECT_EQ(obs.metrics().FindCounter("hotspot.windows_flagged")->value(), 4);
  EXPECT_EQ(obs.metrics().FindCounter("hotspot.episodes")->value(), 1);
}

TEST(HotspotDetectorTest, TakeEpisodesDeliversOpenAndCloseEdges) {
  HotspotConfig config;
  config.sustain_windows = 2;
  config.cool_windows = 2;
  HotspotDetector det(config, 2);
  // Ramp toward the streak: nothing pending until sustain is reached.
  ObserveAt(det, 0, SkewedPair(10 * kMillisecond));
  EXPECT_TRUE(det.TakeEpisodes().empty());
  ObserveAt(det, 1, SkewedPair(20 * kMillisecond));
  std::vector<HotspotEvent> events = det.TakeEpisodes();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, HotspotEvent::Kind::kOpened);
  EXPECT_EQ(events[0].episode.server, 0);
  EXPECT_EQ(events[0].episode.windows, 2);  // the streak so far, at open time
  EXPECT_EQ(events[0].episode.peak_queue_p99, 20 * kMillisecond);
  // The drain is consuming: a second Take returns nothing new.
  EXPECT_TRUE(det.TakeEpisodes().empty());
  // A one-window lull inside the streak (cool_windows = 2 tolerates it)
  // produces NO close event — the episode is still open.
  ObserveAt(det, 2, QuietPair());
  EXPECT_TRUE(det.TakeEpisodes().empty());
  ObserveAt(det, 3, SkewedPair(5 * kMillisecond));
  EXPECT_TRUE(det.TakeEpisodes().empty());  // still the same open episode
  // cool_windows consecutive quiet windows close it.
  ObserveAt(det, 4, QuietPair());
  ObserveAt(det, 5, QuietPair());
  events = det.TakeEpisodes();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, HotspotEvent::Kind::kClosed);
  EXPECT_EQ(events[0].episode.server, 0);
  EXPECT_EQ(events[0].episode.windows, 3);        // lull windows don't count
  EXPECT_EQ(events[0].episode.end, 4 * kMinute);  // last *hot* window's end
  EXPECT_TRUE(det.TakeEpisodes().empty());
}

TEST(HotspotDetectorTest, TakeEpisodesFinalizeClosesOpenEpisode) {
  HotspotDetector det(HotspotConfig{}, 2);
  for (int w = 0; w < 3; ++w) {
    ObserveAt(det, w, SkewedPair(10 * kMillisecond));
  }
  std::vector<HotspotEvent> events = det.TakeEpisodes();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, HotspotEvent::Kind::kOpened);
  det.Finalize();
  events = det.TakeEpisodes();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, HotspotEvent::Kind::kClosed);
}

TEST(HotspotDetectorTest, TakeEpisodesResetDropsPendingEvents) {
  HotspotDetector det(HotspotConfig{}, 2);
  for (int w = 0; w < 3; ++w) {
    ObserveAt(det, w, SkewedPair(10 * kMillisecond));
  }
  det.Reset();  // warmup discard: the un-drained open event dies with it
  EXPECT_TRUE(det.TakeEpisodes().empty());
}

TEST(HotspotDetectorTest, GrowToTracksAddedServers) {
  HotspotDetector det(HotspotConfig{}, 2);
  det.GrowTo(3);
  // Three-server signals: the new server 2 runs hot, the others idle.
  std::vector<HotspotSignal> signals(3);
  signals[2].queue_p99 = 10 * kMillisecond;
  signals[2].bytes_homed = 10 * kMegabyte;
  signals[0].queue_p99 = 10;
  signals[0].bytes_homed = kMegabyte;
  signals[1].queue_p99 = 10;
  signals[1].bytes_homed = kMegabyte;
  for (int w = 0; w < 3; ++w) {
    det.Observe(w * kMinute, (w + 1) * kMinute, signals);
  }
  EXPECT_TRUE(det.active(2));
  const std::vector<HotspotEvent> events = det.TakeEpisodes();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].episode.server, 2);
  det.GrowTo(2);  // shrink requests are ignored
  EXPECT_TRUE(det.active(2));
}

TEST(HotspotDetectorTest, ReportNamesFlaggedServerAndRules) {
  HotspotDetector det(HotspotConfig{}, 2);
  for (int w = 0; w < 3; ++w) {
    ObserveAt(det, w, SkewedPair(10 * kMillisecond));
  }
  det.Finalize();
  const std::string report = det.Report();
  EXPECT_NE(report.find("== Hot-spot report =="), std::string::npos);
  EXPECT_NE(report.find("rules:"), std::string::npos);
  EXPECT_NE(report.find("server 0: HOT"), std::string::npos);
  EXPECT_EQ(report.find("no hot spots detected"), std::string::npos);

  HotspotDetector quiet(HotspotConfig{}, 2);
  ObserveAt(quiet, 0, QuietPair());
  quiet.Finalize();
  EXPECT_NE(quiet.Report().find("no hot spots detected"), std::string::npos);
}

}  // namespace
}  // namespace sprite
