#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/util/units.h"

namespace sprite {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(LatencyRecorderTest, CountAndTotalAreExact) {
  LatencyRecorder rec;
  rec.Record(100);
  rec.Record(2500);
  rec.Record(7 * kSecond);
  EXPECT_EQ(rec.count(), 3);
  EXPECT_EQ(rec.total(), 100 + 2500 + 7 * kSecond);
}

TEST(LatencyRecorderTest, QuantilesBracketRecordedRange) {
  LatencyRecorder rec;
  for (int i = 0; i < 1000; ++i) {
    rec.Record(1000);  // 1 ms
  }
  const SimDuration p50 = rec.Quantile(0.5);
  const SimDuration p99 = rec.Quantile(0.99);
  // Log buckets at base 1.25 give ~±25% resolution around the true value.
  EXPECT_GT(p50, 700);
  EXPECT_LT(p50, 1400);
  EXPECT_GE(p99, p50);
}

TEST(LatencyRecorderTest, EmptyAndAllZeroQuantilesAreZero) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.Quantile(0.5), 0);
  rec.Record(0);  // ledger-only RPCs cost no time
  rec.Record(0);
  EXPECT_EQ(rec.count(), 2);
  EXPECT_EQ(rec.total(), 0);
  EXPECT_EQ(rec.Quantile(0.5), 0);
}

TEST(LatencyRecorderTest, ResetClearsEverything) {
  LatencyRecorder rec;
  rec.Record(5000);
  rec.Reset();
  EXPECT_EQ(rec.count(), 0);
  EXPECT_EQ(rec.total(), 0);
  EXPECT_EQ(rec.Quantile(0.9), 0);
}

TEST(MetricsRegistryTest, CounterAndLatencyRegistrationIsIdempotent) {
  MetricsRegistry m;
  Counter* a = m.AddCounter("cache.miss_fills");
  Counter* b = m.AddCounter("cache.miss_fills");
  EXPECT_EQ(a, b);  // N clients share one cluster-wide counter
  LatencyRecorder* r1 = m.AddLatency("rpc.open.latency_us");
  LatencyRecorder* r2 = m.AddLatency("rpc.open.latency_us");
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(m.instrument_count(), 2u);
}

TEST(MetricsRegistryTest, FindLooksUpByName) {
  MetricsRegistry m;
  m.AddCounter("a")->Add(7);
  m.AddLatency("b")->Record(10);
  ASSERT_NE(m.FindCounter("a"), nullptr);
  EXPECT_EQ(m.FindCounter("a")->value(), 7);
  ASSERT_NE(m.FindLatency("b"), nullptr);
  EXPECT_EQ(m.FindLatency("b")->count(), 1);
  EXPECT_EQ(m.FindCounter("missing"), nullptr);
  EXPECT_EQ(m.FindLatency("missing"), nullptr);
}

TEST(MetricsRegistryTest, SnapshotOrdersCountersGaugesLatencies) {
  MetricsRegistry m;
  m.AddLatency("lat")->Record(500);
  m.AddGauge("gauge", [] { return int64_t{11}; });
  m.AddCounter("count")->Add(3);
  const MetricsSnapshot snap = m.Snapshot(1234);
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.time, 1234);
  EXPECT_EQ(snap.samples[0].name, "count");
  EXPECT_EQ(snap.samples[0].kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(snap.samples[0].value, 3);
  EXPECT_EQ(snap.samples[1].name, "gauge");
  EXPECT_EQ(snap.samples[1].value, 11);
  EXPECT_EQ(snap.samples[2].name, "lat");
  EXPECT_EQ(snap.samples[2].count, 1);
  EXPECT_EQ(snap.samples[2].total, 500);
}

TEST(MetricsRegistryTest, GaugeReRegistrationReplacesReader) {
  MetricsRegistry m;
  m.AddGauge("g", [] { return int64_t{1}; });
  m.AddGauge("g", [] { return int64_t{2}; });
  const MetricsSnapshot snap = m.Snapshot(0);
  ASSERT_EQ(snap.samples.size(), 1u);
  EXPECT_EQ(snap.samples[0].value, 2);
}

TEST(MetricsRegistryTest, HistoryAndReset) {
  MetricsRegistry m;
  Counter* c = m.AddCounter("c");
  c->Add(5);
  m.RecordSnapshot(10);
  m.RecordSnapshot(20);
  ASSERT_EQ(m.history().size(), 2u);
  EXPECT_EQ(m.history()[1].time, 20);
  m.Reset();
  EXPECT_TRUE(m.history().empty());
  EXPECT_EQ(c->value(), 0);               // zeroed, not unregistered
  EXPECT_EQ(m.instrument_count(), 1u);
}

TEST(MetricsRegistryTest, HistoryLimitBoundsRetention) {
  MetricsRegistry m;
  m.AddCounter("c");
  m.SetHistoryLimit(3);
  for (SimTime t = 1; t <= 5; ++t) {
    m.RecordSnapshot(t);
  }
  ASSERT_EQ(m.history().size(), 3u);
  EXPECT_EQ(m.history().front().time, 3);  // oldest snapshots evicted
  EXPECT_EQ(m.history().back().time, 5);
}

TEST(MetricsRegistryTest, ForEachLatencyVisitsInRegistrationOrder) {
  MetricsRegistry m;
  m.AddLatency("z.second")->Record(10);
  m.AddCounter("a.counter");
  m.AddLatency("a.first")->Record(20);
  std::vector<std::string> seen;
  m.ForEachLatency([&seen](const std::string& name, const LatencyRecorder& rec) {
    seen.push_back(name);
    EXPECT_EQ(rec.count(), 1);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "z.second");  // registration order, not name order
  EXPECT_EQ(seen[1], "a.first");
}

TEST(FormatMetricsSnapshotTest, RendersDocumentedLineFormat) {
  MetricsRegistry m;
  m.AddCounter("rpc.calls")->Add(9);
  m.AddGauge("sim.queue.pending", [] { return int64_t{4}; });
  LatencyRecorder* rec = m.AddLatency("rpc.open.latency_us");
  rec->Record(1000);
  rec->Record(3000);
  const std::string text = FormatMetricsSnapshot(m.Snapshot(42));
  EXPECT_NE(text.find("# sprite-metrics v1\n"), std::string::npos);
  EXPECT_NE(text.find("snapshot t_us=42\n"), std::string::npos);
  EXPECT_NE(text.find("counter rpc.calls 9\n"), std::string::npos);
  EXPECT_NE(text.find("gauge sim.queue.pending 4\n"), std::string::npos);
  EXPECT_NE(text.find("latency rpc.open.latency_us count=2 total_us=4000"),
            std::string::npos);
  EXPECT_NE(text.find("\nend\n"), std::string::npos);
}

}  // namespace
}  // namespace sprite
