#include "src/obs/timeseries.h"

#include <gtest/gtest.h>

#include <string>

#include "src/obs/metrics.h"
#include "src/util/units.h"

namespace sprite {
namespace {

TEST(MetricsTimeSeriesTest, CounterDeltaAndRatePerWindow) {
  MetricsRegistry m;
  Counter* c = m.AddCounter("rpc.calls");
  MetricsTimeSeries series(&m, 16);

  c->Add(10);
  series.Capture(2 * kSecond);
  c->Add(30);
  series.Capture(4 * kSecond);

  ASSERT_EQ(series.size(), 2u);
  const WindowSample* w0 = series.window(0).Find("rpc.calls");
  ASSERT_NE(w0, nullptr);
  EXPECT_EQ(w0->value, 10);
  EXPECT_EQ(w0->delta, 10);  // first window baselines at zero
  EXPECT_DOUBLE_EQ(w0->rate_per_sec, 5.0);
  const WindowSample* w1 = series.window(1).Find("rpc.calls");
  ASSERT_NE(w1, nullptr);
  EXPECT_EQ(w1->value, 40);
  EXPECT_EQ(w1->delta, 30);
  EXPECT_DOUBLE_EQ(w1->rate_per_sec, 15.0);
  EXPECT_EQ(series.window(0).start, 0);
  EXPECT_EQ(series.window(0).end, 2 * kSecond);
  EXPECT_EQ(series.window(1).start, 2 * kSecond);
  EXPECT_EQ(series.window(1).end, 4 * kSecond);
}

TEST(MetricsTimeSeriesTest, GaugeDeltaIsSigned) {
  MetricsRegistry m;
  int64_t value = 100;
  m.AddGauge("cache.bytes", [&value] { return value; });
  MetricsTimeSeries series(&m, 16);

  series.Capture(kSecond);
  value = 40;
  series.Capture(2 * kSecond);

  EXPECT_EQ(series.window(0).Find("cache.bytes")->delta, 100);
  EXPECT_EQ(series.window(1).Find("cache.bytes")->delta, -60);
}

TEST(MetricsTimeSeriesTest, WindowedPercentilesDivergeFromCumulative) {
  MetricsRegistry m;
  LatencyRecorder* rec = m.AddLatency("server.0.queue_us");
  MetricsTimeSeries series(&m, 16);

  // Window 0: a thousand fast waits. Window 1: a thousand slow ones. The
  // cumulative p50 stays in between, but each window's p50 must reflect only
  // its own samples.
  for (int i = 0; i < 1000; ++i) {
    rec->Record(100);
  }
  series.Capture(kMinute);
  for (int i = 0; i < 1000; ++i) {
    rec->Record(100 * kMillisecond);
  }
  series.Capture(2 * kMinute);

  const WindowSample* w0 = series.window(0).Find("server.0.queue_us");
  const WindowSample* w1 = series.window(1).Find("server.0.queue_us");
  ASSERT_NE(w0, nullptr);
  ASSERT_NE(w1, nullptr);
  EXPECT_EQ(w0->win_count, 1000);
  EXPECT_EQ(w1->win_count, 1000);
  EXPECT_EQ(w1->count, 2000);  // cumulative keeps growing
  // Window 0 saw only ~100 us waits; window 1 only ~100 ms waits (log
  // buckets at base 1.25 give ~±25% resolution).
  EXPECT_LT(w0->win_p50, 200);
  EXPECT_GT(w1->win_p50, 50 * kMillisecond);
  // The cumulative p50 of window 1 mixes both populations, so it must sit
  // far below the windowed p50 of the slow window.
  EXPECT_LT(w1->p50, w1->win_p50);
  EXPECT_EQ(w1->win_total, 1000 * 100 * kMillisecond);
}

TEST(MetricsTimeSeriesTest, EmptyLatencyWindowHasZeroPercentiles) {
  MetricsRegistry m;
  LatencyRecorder* rec = m.AddLatency("lat");
  rec->Record(5000);
  MetricsTimeSeries series(&m, 4);
  series.Capture(kMinute);
  series.Capture(2 * kMinute);  // no new samples
  const WindowSample* w1 = series.window(1).Find("lat");
  ASSERT_NE(w1, nullptr);
  EXPECT_EQ(w1->win_count, 0);
  EXPECT_EQ(w1->win_p50, 0);
  EXPECT_EQ(w1->win_p99, 0);
  EXPECT_EQ(w1->count, 1);  // cumulative side still reports the run totals
}

TEST(MetricsTimeSeriesTest, RingBufferEvictsOldestAndCounts) {
  MetricsRegistry m;
  Counter* c = m.AddCounter("c");
  MetricsTimeSeries series(&m, 3);
  for (int i = 1; i <= 5; ++i) {
    c->Add(1);
    series.Capture(i * kSecond);
  }
  EXPECT_EQ(series.size(), 3u);
  EXPECT_EQ(series.capacity(), 3u);
  EXPECT_EQ(series.windows_captured(), 5);
  EXPECT_EQ(series.windows_evicted(), 2);
  // Oldest-first: the surviving windows are seq 2, 3, 4.
  EXPECT_EQ(series.window(0).seq, 2);
  EXPECT_EQ(series.window(2).seq, 4);
  ASSERT_NE(series.latest(), nullptr);
  EXPECT_EQ(series.latest()->seq, 4);
  // Deltas survive eviction: baselines are per-instrument, not per-window.
  EXPECT_EQ(series.window(2).Find("c")->delta, 1);
}

TEST(MetricsTimeSeriesTest, ResetRebaselinesAtGivenTime) {
  MetricsRegistry m;
  Counter* c = m.AddCounter("c");
  MetricsTimeSeries series(&m, 8);
  c->Add(100);
  series.Capture(kMinute);
  series.Reset(5 * kMinute);  // warmup discard
  EXPECT_EQ(series.size(), 0u);
  EXPECT_EQ(series.windows_captured(), 0);
  EXPECT_EQ(series.last_capture_time(), 5 * kMinute);
  c->Add(7);
  series.Capture(6 * kMinute);
  const MetricsWindow& w = series.window(0);
  EXPECT_EQ(w.seq, 0);
  EXPECT_EQ(w.start, 5 * kMinute);
  // The counter was NOT reset here, so the post-reset delta is against a
  // fresh (zero) baseline — the cluster resets the registry alongside.
  EXPECT_EQ(w.Find("c")->value, 107);
}

TEST(MetricsTimeSeriesTest, FinalPartialWindowIsMarked) {
  MetricsRegistry m;
  m.AddCounter("c");
  MetricsTimeSeries series(&m, 8);
  series.Capture(kMinute);
  series.Capture(kMinute + 17 * kSecond, /*final_partial=*/true);
  EXPECT_FALSE(series.window(0).final_partial);
  EXPECT_TRUE(series.window(1).final_partial);
  EXPECT_EQ(series.window(1).end - series.window(1).start, 17 * kSecond);
}

TEST(FormatMetricsWindowTest, RendersDocumentedV2Format) {
  MetricsRegistry m;
  m.AddCounter("rpc.calls")->Add(9);
  m.AddGauge("sim.queue.pending", [] { return int64_t{4}; });
  LatencyRecorder* rec = m.AddLatency("rpc.open.latency_us");
  rec->Record(1000);
  rec->Record(3000);
  MetricsTimeSeries series(&m, 4);
  series.Capture(3 * kSecond);
  const std::string text = FormatMetricsWindow(series.window(0));
  EXPECT_NE(text.find("# sprite-metrics v2\n"), std::string::npos);
  EXPECT_NE(text.find("window seq=0 t_start_us=0 t_end_us=3000000 final_partial=0\n"),
            std::string::npos);
  EXPECT_NE(text.find("counter rpc.calls 9 delta=9 rate_hz=3.000\n"), std::string::npos);
  EXPECT_NE(text.find("gauge sim.queue.pending 4 delta=4\n"), std::string::npos);
  EXPECT_NE(text.find("latency rpc.open.latency_us count=2 total_us=4000"),
            std::string::npos);
  EXPECT_NE(text.find("win_count=2 win_total_us=4000"), std::string::npos);
  EXPECT_NE(text.find("\nend\n"), std::string::npos);
}

}  // namespace
}  // namespace sprite
