#include "src/obs/tracer.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/obs/metrics.h"

namespace sprite {
namespace {

TEST(SpanTracerTest, TrackHelpersFollowPidConvention) {
  EXPECT_EQ(ClientTrack(3).pid, kClientPidBase + 3);
  EXPECT_EQ(ServerTrack(1).pid, kServerPidBase + 1);
  EXPECT_EQ(ClientTrack(0).tid, 1);
}

TEST(SpanTracerTest, EmitRecordsSpansInOrder) {
  SpanTracer tracer;
  tracer.Emit("open", "rpc", ClientTrack(0), 100, 50, {{"server", 2}, {"bytes", 128}});
  tracer.Emit("read-block", "rpc", ClientTrack(1), 200, 7000);
  ASSERT_EQ(tracer.spans().size(), 2u);
  const Span& s = tracer.spans()[0];
  EXPECT_STREQ(s.name, "open");
  EXPECT_STREQ(s.category, "rpc");
  EXPECT_EQ(s.start, 100);
  EXPECT_EQ(s.duration, 50);
  ASSERT_EQ(s.num_args, 2);
  EXPECT_STREQ(s.args[0].key, "server");
  EXPECT_EQ(s.args[0].value, 2);
  EXPECT_EQ(tracer.spans()[1].num_args, 0);
}

TEST(SpanTracerTest, ExtraArgsBeyondMaxAreDropped) {
  SpanTracer tracer;
  tracer.Emit("x", "c", ClientTrack(0), 0, 0,
              {{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}, {"e", 5}, {"f", 6}, {"g", 7}});
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].num_args, Span::kMaxArgs);
}

TEST(SpanTracerTest, ResetDropsSpansButKeepsTrackNames) {
  SpanTracer tracer;
  tracer.SetProcessName(ClientTrack(0).pid, "client 0");
  tracer.Emit("open", "rpc", ClientTrack(0), 0, 1);
  tracer.Reset();
  EXPECT_TRUE(tracer.spans().empty());
  std::ostringstream out;
  tracer.WriteChromeTrace(out);
  EXPECT_NE(out.str().find("\"process_name\""), std::string::npos);
  EXPECT_NE(out.str().find("client 0"), std::string::npos);
}

TEST(SpanTracerTest, WritesChromeTraceEventJson) {
  SpanTracer tracer;
  tracer.SetProcessName(ClientTrack(0).pid, "client 0");
  tracer.SetThreadName(ClientTrack(0), "main");
  tracer.Emit("read-block", "rpc", ClientTrack(0), 1500, 6500, {{"bytes", 4096}});
  std::ostringstream out;
  tracer.WriteChromeTrace(out);
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);  // starts the array
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("{\"ph\":\"X\",\"name\":\"read-block\",\"cat\":\"rpc\",\"pid\":100,"
                      "\"tid\":1,\"ts\":1500,\"dur\":6500,\"args\":{\"bytes\":4096}}"),
            std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
}

TEST(SpanTracerTest, EscapesControlAndQuoteCharactersInNames) {
  SpanTracer tracer;
  tracer.SetProcessName(7, "we\"ird\\name\n");
  std::ostringstream out;
  tracer.WriteChromeTrace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("we\\\"ird\\\\name\\n"), std::string::npos);
}

TEST(SpanTracerTest, ExportsMetricsHistoryAsCounterEvents) {
  MetricsRegistry metrics;
  metrics.AddCounter("rpc.calls")->Add(12);
  metrics.AddGauge("sim.queue.pending", [] { return int64_t{3}; });
  metrics.AddLatency("rpc.open.latency_us")->Record(100);
  metrics.RecordSnapshot(60000000);

  SpanTracer tracer;
  std::ostringstream out;
  tracer.WriteChromeTrace(out, &metrics);
  const std::string json = out.str();
  EXPECT_NE(json.find("{\"ph\":\"C\",\"name\":\"rpc.calls\",\"pid\":9999,\"tid\":0,"
                      "\"ts\":60000000,\"args\":{\"value\":12}}"),
            std::string::npos);
  EXPECT_NE(json.find("\"sim.queue.pending\""), std::string::npos);
  // Latency samples are distributions, not counter tracks.
  EXPECT_EQ(json.find("\"rpc.open.latency_us\""), std::string::npos);
  // The synthetic metrics process is named.
  EXPECT_NE(json.find("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":9999"),
            std::string::npos);
}

TEST(CounterTrackPidTest, RoutesPrefixedNamesToComponentTracks) {
  EXPECT_EQ(CounterTrackPid("server.0.queue_depth"), kServerPidBase + 0);
  EXPECT_EQ(CounterTrackPid("server.12.bytes_homed"), kServerPidBase + 12);
  EXPECT_EQ(CounterTrackPid("client.3.cache_bytes"), kClientPidBase + 3);
  // Unprefixed and cluster-wide names stay on the synthetic metrics track.
  EXPECT_EQ(CounterTrackPid("rpc.calls"), kMetricsPid);
  EXPECT_EQ(CounterTrackPid("sim.queue.pending"), kMetricsPid);
  EXPECT_EQ(CounterTrackPid("hotspot.episodes"), kMetricsPid);
  // Malformed near-misses must not route: no id, no dot after the id, or a
  // non-numeric id.
  EXPECT_EQ(CounterTrackPid("server."), kMetricsPid);
  EXPECT_EQ(CounterTrackPid("server.7"), kMetricsPid);
  EXPECT_EQ(CounterTrackPid("server.x.queue"), kMetricsPid);
  EXPECT_EQ(CounterTrackPid("servers.0.queue"), kMetricsPid);
}

TEST(CounterTrackPidTest, GaugesExportOnPerServerTracks) {
  MetricsRegistry metrics;
  metrics.AddGauge("server.1.queue_depth", [] { return int64_t{4}; });
  metrics.RecordSnapshot(1000);
  SpanTracer tracer;
  std::ostringstream out;
  tracer.WriteChromeTrace(out, &metrics);
  const std::string json = out.str();
  EXPECT_NE(json.find("{\"ph\":\"C\",\"name\":\"server.1.queue_depth\",\"pid\":1001,"),
            std::string::npos);
}

TEST(SpanTracerTest, SpanEqualityComparesContentNotPointers) {
  const std::string name1 = "open";
  const std::string name2 = "open";  // distinct storage, equal content
  SpanTracer a;
  SpanTracer b;
  a.Emit(name1.c_str(), "rpc", ClientTrack(0), 10, 20);
  b.Emit(name2.c_str(), "rpc", ClientTrack(0), 10, 20);
  EXPECT_TRUE(a.spans()[0] == b.spans()[0]);
}

}  // namespace
}  // namespace sprite
