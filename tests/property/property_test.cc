// Parameterized property tests: invariants that must hold across seeds,
// sizes, and policies, exercised with TEST_P sweeps.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/consistency/overhead.h"
#include "src/consistency/polling.h"
#include "src/fs/block_cache.h"
#include "src/fs/sharding.h"
#include "src/trace/codec.h"
#include "src/trace/merge.h"
#include "src/util/distributions.h"
#include "src/util/rng.h"
#include "src/workload/generator.h"

namespace sprite {
namespace {

// ---------- BlockCache: LRU and accounting invariants across sizes ----------

class CacheSizeProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(CacheSizeProperty, PopulationNeverExceedsLimitAndLruHolds) {
  const int64_t limit = GetParam();
  CacheConfig config;
  config.min_blocks = 1;
  config.max_blocks = limit;
  CacheCounters counters;
  BlockCache cache(config, &counters);
  cache.set_limit_blocks(limit);
  Rng rng(static_cast<uint64_t>(limit) * 977 + 5);

  int64_t writebacks = 0;
  auto sink = [&](BlockKey, int64_t) { ++writebacks; };

  for (SimTime t = 1; t <= 4000; ++t) {
    const BlockKey key{rng.NextBelow(4), static_cast<int64_t>(rng.NextBelow(64))};
    switch (rng.NextBelow(4)) {
      case 0:
        cache.Lookup(key, t);
        break;
      case 1:
        cache.InsertClean(key, t, sink);
        break;
      case 2:
        cache.Write(key, t, 1 + static_cast<int64_t>(rng.NextBelow(kBlockSize)), sink);
        break;
      case 3:
        cache.CleanAged(t, sink);
        break;
    }
    ASSERT_LE(cache.block_count(), limit) << "population must respect the limit";
  }
  // Cleaning everything leaves no dirty blocks anywhere.
  for (uint64_t f = 0; f < 4; ++f) {
    cache.CleanFile(f, 5000, CleanReason::kFsync, sink);
    EXPECT_FALSE(cache.HasDirtyBlocks(f));
  }
}

INSTANTIATE_TEST_SUITE_P(Limits, CacheSizeProperty, ::testing::Values(1, 2, 3, 8, 64, 1024));

// ---------- Distributions: CDF/quantile consistency across shapes -----------

class DistributionProperty
    : public ::testing::TestWithParam<std::shared_ptr<const Distribution>> {};

TEST_P(DistributionProperty, SamplesNonNegativeAndDeterministic) {
  const Distribution& d = *GetParam();
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 2000; ++i) {
    const double x = d.Sample(a);
    const double y = d.Sample(b);
    ASSERT_EQ(x, y) << "same seed must give the same stream";
    ASSERT_GE(x, 0.0) << d.Describe();
  }
}

TEST_P(DistributionProperty, EmpiricalCdfMonotone) {
  const Distribution& d = *GetParam();
  Rng rng(11);
  std::vector<double> samples(5000);
  for (double& s : samples) {
    s = d.Sample(rng);
  }
  std::sort(samples.begin(), samples.end());
  // Quantiles of the sample must be nondecreasing (trivially true) and the
  // median must lie within the sample range.
  const double median = samples[samples.size() / 2];
  EXPECT_GE(median, samples.front());
  EXPECT_LE(median, samples.back());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DistributionProperty,
    ::testing::Values(
        std::make_shared<UniformDistribution>(0.0, 100.0),
        std::make_shared<ExponentialDistribution>(10.0),
        std::make_shared<LogNormalDistribution>(1024.0, 2.0),
        std::make_shared<BoundedParetoDistribution>(1.05, 1e3, 1e7),
        std::make_shared<EmpiricalDistribution>(std::vector<EmpiricalDistribution::Point>{
            {0.0, 0.0}, {10.0, 0.4}, {1000.0, 1.0}})));

// ---------- Codec: round-trip across random logs ------------------------------

class CodecProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecProperty, RandomLogRoundTrips) {
  Rng rng(GetParam());
  TraceLog log;
  SimTime t = 0;
  const size_t n = 100 + rng.NextBelow(400);
  for (size_t i = 0; i < n; ++i) {
    Record r;
    r.kind = static_cast<RecordKind>(rng.NextBelow(11));
    t += static_cast<SimTime>(rng.NextBelow(kMinute));
    r.time = t;
    r.user = static_cast<uint32_t>(rng.NextBelow(64));
    r.client = static_cast<uint32_t>(rng.NextBelow(40));
    r.server = static_cast<uint32_t>(rng.NextBelow(4));
    r.file = rng.NextBelow(1u << 24);
    r.handle = rng.NextBelow(1u << 20);
    r.mode = static_cast<OpenMode>(rng.NextBelow(3));
    r.migrated = rng.NextBool(0.2);
    r.is_directory = rng.NextBool(0.1);
    r.offset_before = static_cast<int64_t>(rng.NextBelow(1u << 26));
    r.offset_after = static_cast<int64_t>(rng.NextBelow(1u << 26));
    r.file_size = static_cast<int64_t>(rng.NextBelow(1u << 26));
    r.run_read_bytes = static_cast<int64_t>(rng.NextBelow(1u << 22));
    r.run_write_bytes = static_cast<int64_t>(rng.NextBelow(1u << 22));
    r.io_bytes = static_cast<int64_t>(rng.NextBelow(1u << 16));
    r.peer_client = static_cast<uint32_t>(rng.NextBelow(40));
    log.push_back(r);
  }
  EXPECT_EQ(DecodeTrace(EncodeTrace(log)), log);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty, ::testing::Range<uint64_t>(1, 9));

// ---------- Merge: permutation invariance -------------------------------------

class MergeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergeProperty, MergePreservesMultisetAndOrder) {
  Rng rng(GetParam() * 31 + 7);
  std::vector<TraceLog> logs(1 + rng.NextBelow(5));
  size_t total = 0;
  for (size_t s = 0; s < logs.size(); ++s) {
    SimTime t = 0;
    const size_t n = rng.NextBelow(200);
    for (size_t i = 0; i < n; ++i) {
      t += static_cast<SimTime>(rng.NextBelow(1000));
      Record r;
      r.time = t;
      r.server = static_cast<uint32_t>(s);
      r.handle = i;
      logs[s].push_back(r);
    }
    total += n;
  }
  const TraceLog merged = MergeSorted(logs);
  EXPECT_EQ(merged.size(), total);
  EXPECT_TRUE(IsTimeOrdered(merged));
  // Per-server subsequences keep their original order.
  for (size_t s = 0; s < logs.size(); ++s) {
    std::vector<uint64_t> handles;
    for (const Record& r : merged) {
      if (r.server == s) {
        handles.push_back(r.handle);
      }
    }
    ASSERT_EQ(handles.size(), logs[s].size());
    EXPECT_TRUE(std::is_sorted(handles.begin(), handles.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeProperty, ::testing::Range<uint64_t>(1, 9));

// ---------- Polling: interval monotonicity across workload seeds ---------------

class PollingProperty : public ::testing::TestWithParam<uint64_t> {};

TraceLog SmallWorkloadTrace(uint64_t seed) {
  WorkloadParams params;
  params.num_users = 8;
  params.seed = seed;
  // Sharing-rich so the polling simulation has material.
  for (auto& group : params.groups) {
    group.task_weights[static_cast<int>(TaskKind::kShareAppend)] *= 3.0;
  }
  ClusterConfig cluster;
  cluster.num_clients = 8;
  cluster.num_servers = 2;
  Generator generator(params, cluster);
  return generator.Run(40 * kMinute);
}

TEST_P(PollingProperty, LongerIntervalsNeverReduceErrors) {
  const TraceLog trace = SmallWorkloadTrace(GetParam());
  int64_t previous = 0;
  for (SimDuration interval : {kSecond, 3 * kSecond, 15 * kSecond, kMinute, 5 * kMinute}) {
    const PollingResult result = SimulatePolling(trace, interval);
    EXPECT_GE(result.errors, previous)
        << "a longer validity interval can only admit more stale reads";
    previous = result.errors;
    EXPECT_LE(result.opens_with_error, result.file_opens);
    EXPECT_LE(result.users_affected.size(), result.users_seen.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PollingProperty, ::testing::Values(1, 2, 3, 4));

// ---------- Overhead: algorithm invariants across workload seeds ----------------

class OverheadProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OverheadProperty, SpriteIsExactAndDenominatorsAgree) {
  const TraceLog trace = SmallWorkloadTrace(GetParam() + 100);
  const OverheadResult sprite = SimulateConsistencyOverhead(trace, ConsistencyPolicy::kSprite);
  const OverheadResult modified =
      SimulateConsistencyOverhead(trace, ConsistencyPolicy::kSpriteModified);
  const OverheadResult token = SimulateConsistencyOverhead(trace, ConsistencyPolicy::kToken);
  // All three see the same application demand.
  EXPECT_EQ(sprite.bytes_requested, modified.bytes_requested);
  EXPECT_EQ(sprite.bytes_requested, token.bytes_requested);
  EXPECT_EQ(sprite.events_requested, token.events_requested);
  if (sprite.events_requested > 0) {
    // "The current Sprite mechanism transfers exactly these bytes."
    EXPECT_DOUBLE_EQ(sprite.byte_ratio(), 1.0);
    EXPECT_DOUBLE_EQ(sprite.rpc_ratio(), 1.0);
    EXPECT_GT(modified.bytes_transferred, 0);
    EXPECT_GT(token.bytes_transferred, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverheadProperty, ::testing::Values(1, 2, 3, 4));

// ---------- Sharding: placement invariants across server counts -----------------

class PlacementProperty : public ::testing::TestWithParam<int> {};

// Every id any layer can produce must map to a valid server under every
// policy — including range boundaries, deep temporaries, and ids far beyond
// the workload's reach.
TEST_P(PlacementProperty, EveryFileIdMapsToAValidServer) {
  const int n = GetParam();
  using L = FileIdLayout;
  std::vector<FileId> ids = {0,
                             L::kSystemDirectory,
                             L::kExecutableBase,
                             L::kMailboxBase,
                             L::kDirectoryBase,
                             L::kSharedDirectory,
                             L::kSharedBase,
                             L::kBackingBase,
                             L::kUserFileBase,
                             L::kTempBase,
                             kDefaultRangeSpan - 1,
                             kDefaultRangeSpan,
                             FileId{1} << 40,
                             (FileId{1} << 63) - 1};
  Rng rng(static_cast<uint64_t>(n) * 131 + 17);
  for (int i = 0; i < 2000; ++i) {
    ids.push_back(rng.NextBelow(FileId{1} << 48));
  }
  for (const ShardingPolicy policy :
       {ShardingPolicy::kModulo, ShardingPolicy::kHash, ShardingPolicy::kRange,
        ShardingPolicy::kDirAffinity}) {
    ShardingConfig config;
    config.policy = policy;
    const auto sharder = MakeSharder(config, n);
    for (const FileId file : ids) {
      const ServerId server = sharder->ServerFor(file);
      ASSERT_LT(static_cast<int>(server), n)
          << ShardingPolicyName(policy) << " placed " << file << " out of range";
    }
  }
}

// The default kRange split points partition the id space: the mapping is
// monotone in the id, each split point starts the next server's range, and
// every server owns a non-empty range — no gaps, no overlaps.
TEST_P(PlacementProperty, RangeSplitsPartitionTheIdSpace) {
  const int n = GetParam();
  ShardingConfig config;
  config.policy = ShardingPolicy::kRange;
  const auto sharder = MakeSharder(config, n);
  const FileId slice = kDefaultRangeSpan / static_cast<FileId>(n);
  for (int s = 0; s < n; ++s) {
    const FileId lo = static_cast<FileId>(s) * slice;
    EXPECT_EQ(sharder->ServerFor(lo), s) << "split point starts server " << s;
    EXPECT_EQ(sharder->ServerFor(lo + slice - 1), s) << "last id of server " << s;
    if (s > 0) {
      EXPECT_EQ(sharder->ServerFor(lo - 1), s - 1) << "no overlap at split " << s;
    }
  }
  // Monotone over a sweep: the owner never decreases as ids increase, so
  // ranges are contiguous.
  ServerId previous = 0;
  for (FileId f = 0; f < kDefaultRangeSpan + 3 * slice; f += slice / 7 + 1) {
    const ServerId server = sharder->ServerFor(f);
    ASSERT_GE(server, previous) << "range mapping must be monotone (id " << f << ")";
    previous = server;
  }
  EXPECT_EQ(previous, static_cast<ServerId>(n - 1)) << "the sweep reaches every server";
}

// kDirAffinity: a file and its parent directory always share a server, for
// every population with a durable parent, at every server count.
TEST_P(PlacementProperty, DirAffinityColocatesFileAndParent) {
  const int n = GetParam();
  using L = FileIdLayout;
  ShardingConfig config;
  config.policy = ShardingPolicy::kDirAffinity;
  const auto sharder = MakeSharder(config, n);
  for (FileId user = 0; user < 40; ++user) {
    const ServerId dir_home = sharder->ServerFor(L::kDirectoryBase + user);
    EXPECT_EQ(sharder->ServerFor(L::kMailboxBase + user), dir_home);
    for (const FileId idx : {FileId{0}, FileId{3}, FileId{997}, FileId{998}, FileId{999}}) {
      const FileId file = L::kUserFileBase + user * L::kUserFileStride + idx;
      ASSERT_EQ(sharder->ServerFor(file), dir_home)
          << "user " << user << " file " << idx << " strayed from the home directory";
      ASSERT_EQ(sharder->ServerFor(HomeDirectoryOf(file)), sharder->ServerFor(file));
    }
  }
  for (FileId exe = L::kExecutableBase; exe < L::kExecutableBase + 40; ++exe) {
    EXPECT_EQ(sharder->ServerFor(exe), sharder->ServerFor(L::kSystemDirectory));
  }
  for (FileId shared = L::kSharedBase; shared < L::kSharedBase + 10; ++shared) {
    EXPECT_EQ(sharder->ServerFor(shared), sharder->ServerFor(L::kSharedDirectory));
  }
}

INSTANTIATE_TEST_SUITE_P(ServerCounts, PlacementProperty,
                         ::testing::Values(1, 2, 4, 7, 16));

// Same-seed workload runs route identically under every policy: the
// placement ledger (a pure function of the routing stream) must match.
class PlacementDeterminismProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlacementDeterminismProperty, SameSeedYieldsSamePlacement) {
  for (const ShardingPolicy policy :
       {ShardingPolicy::kModulo, ShardingPolicy::kHash, ShardingPolicy::kRange,
        ShardingPolicy::kDirAffinity}) {
    auto run = [&](std::vector<int64_t>* routed, std::vector<int64_t>* placed) {
      WorkloadParams params;
      params.num_users = 4;
      params.seed = GetParam();
      ClusterConfig cluster;
      cluster.num_clients = 4;
      cluster.num_servers = 3;
      cluster.sharding.policy = policy;
      Generator generator(params, cluster);
      generator.Run(10 * kMinute);
      const PlacementLedger& ledger = generator.cluster().placement();
      for (ServerId s = 0; s < 3; ++s) {
        routed->push_back(ledger.routed(s));
        placed->push_back(ledger.files_placed(s));
      }
    };
    std::vector<int64_t> routed_a, placed_a, routed_b, placed_b;
    run(&routed_a, &placed_a);
    run(&routed_b, &placed_b);
    EXPECT_EQ(routed_a, routed_b) << ShardingPolicyName(policy);
    EXPECT_EQ(placed_a, placed_b) << ShardingPolicyName(policy);
    EXPECT_GT(routed_a[0] + routed_a[1] + routed_a[2], 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementDeterminismProperty, ::testing::Values(1, 2, 3));

// ---------- Cluster consistency under random schedules ---------------------------

class ConsistencyProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConsistencyProperty, ReadsAlwaysObserveLatestCommittedSize) {
  EventQueue queue;
  ClusterConfig config;
  config.num_clients = 5;
  config.num_servers = 2;
  config.client.memory_bytes = 4 * kMegabyte;
  Cluster cluster(config, queue);
  cluster.StartDaemons();
  Rng rng(GetParam() * 1009 + 3);

  std::map<FileId, int64_t> committed_size;
  SimTime now = 0;
  for (int round = 0; round < 300; ++round) {
    now += static_cast<SimTime>(rng.NextBelow(2 * kSecond));
    queue.RunUntil(now);
    const FileId file = 10 + rng.NextBelow(5);
    Client& client = cluster.client(static_cast<ClientId>(rng.NextBelow(5)));
    if (rng.NextBool(0.5)) {
      const int64_t bytes = 1 + static_cast<int64_t>(rng.NextBelow(60000));
      auto open = client.Open(1, file, OpenMode::kWrite, OpenDisposition::kTruncate, false, now);
      client.Write(open.handle, bytes, now);
      client.Close(open.handle, now);
      committed_size[file] = bytes;
    } else {
      auto open = client.Open(1, file, OpenMode::kRead, OpenDisposition::kNormal, false, now);
      const Record& record = cluster.trace().back();
      ASSERT_EQ(record.kind, RecordKind::kOpen);
      const auto it = committed_size.find(file);
      const int64_t expected = it == committed_size.end() ? 0 : it->second;
      ASSERT_EQ(record.file_size, expected)
          << "round " << round << ": a reader observed stale metadata";
      client.Read(open.handle, expected, now);
      client.Close(open.handle, now);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencyProperty, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace sprite
