// Rebalancing property sweeps: randomized sequences of hot-spot migration
// bursts, AddServer steals, and RetireServer evacuations against a fake
// host, checked after every step for the routing invariants the live
// cluster depends on — every file routes to exactly one live server, the
// router and the host never disagree on where a file lives, retired
// servers hold nothing and receive nothing, adds steal only a bounded
// slice, and the hot-spot movement budget is never overspent.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/fs/rebalance.h"
#include "src/fs/sharding.h"
#include "src/util/rng.h"

namespace sprite {
namespace {

class SequenceHost : public RebalanceHost {
 public:
  explicit SequenceHost(int servers)
      : files_(servers), live_(servers, true), down_(servers, false) {}

  void Put(ServerId server, FileId file, int64_t bytes) { files_[server][file] = bytes; }
  void AddEmptyServer() {
    files_.emplace_back();
    live_.push_back(true);
    down_.push_back(false);
  }

  int NumServers() const override { return static_cast<int>(files_.size()); }
  bool IsLive(ServerId server) const override { return live_[server]; }
  bool IsDown(ServerId server, SimTime) const override { return down_[server]; }
  std::vector<std::pair<FileId, int64_t>> HomedFiles(ServerId server) const override {
    return {files_[server].begin(), files_[server].end()};
  }
  int64_t HomedBytes(ServerId server) const override {
    int64_t total = 0;
    for (const auto& [file, bytes] : files_[server]) {
      total += bytes;
    }
    return total;
  }
  MigrationOutcome Migrate(FileId file, ServerId from, ServerId to, SimTime) override {
    auto it = files_[from].find(file);
    if (it == files_[from].end() || from == to) {
      return {};
    }
    MigrationOutcome outcome;
    outcome.ok = true;
    outcome.moved_bytes = it->second;
    outcome.latency = 25;
    files_[to][file] = it->second;
    files_[from].erase(it);
    return outcome;
  }

  // The pre-event (file, home) census over live servers, sorted by file id
  // (what Cluster::HomeCensus feeds the resize hooks).
  std::vector<std::pair<FileId, ServerId>> Census() const {
    std::map<FileId, ServerId> sorted;
    for (size_t s = 0; s < files_.size(); ++s) {
      if (!live_[s]) {
        continue;
      }
      for (const auto& [file, bytes] : files_[s]) {
        sorted[file] = static_cast<ServerId>(s);
      }
    }
    return {sorted.begin(), sorted.end()};
  }

  std::vector<std::map<FileId, int64_t>> files_;
  std::vector<char> live_;
  std::vector<char> down_;
};

class RebalanceSequenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RebalanceSequenceProperty, RoutingStaysConsistentUnderRandomTopologyChurn) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 7919 + 3);
  constexpr int kInitialServers = 3;
  constexpr FileId kFiles = 200;
  constexpr int kMaxServers = 9;

  SequenceHost host(kInitialServers);
  ShardingConfig shard;
  shard.policy = (seed % 2 == 0) ? ShardingPolicy::kModulo : ShardingPolicy::kHash;
  std::unique_ptr<Sharder> base = MakeSharder(shard, kInitialServers);
  RebalanceConfig config;
  config.enabled = true;
  // Odd seeds run with a finite hot-spot budget so the sweep exercises the
  // skip path too.
  config.max_total_bytes = (seed % 2 == 1) ? 64 * kMegabyte : 0;
  Rebalancer reb(config, base.get(), &host);

  for (FileId f = 0; f < kFiles; ++f) {
    host.Put(base->ServerFor(f), f,
             4 * kKilobyte + static_cast<int64_t>(rng.NextBelow(4 * kMegabyte)));
  }

  auto check_invariants = [&](const char* when, int step) {
    for (FileId f = 0; f < kFiles; ++f) {
      const ServerId routed = reb.Route(f);
      ASSERT_NE(routed, kNoServer) << when << " step " << step << " file " << f;
      ASSERT_LT(routed, static_cast<ServerId>(host.NumServers()));
      ASSERT_TRUE(host.live_[routed])
          << when << " step " << step << ": file " << f << " routed to dead server " << routed;
      int copies = 0;
      for (int s = 0; s < host.NumServers(); ++s) {
        if (host.files_[s].count(f) != 0) {
          ++copies;
          ASSERT_EQ(static_cast<ServerId>(s), routed)
              << when << " step " << step << ": router says " << routed << " but file " << f
              << " lives on " << s;
        }
      }
      ASSERT_EQ(copies, 1) << when << " step " << step << ": file " << f
                           << " must live on exactly one server";
    }
    for (int s = 0; s < host.NumServers(); ++s) {
      if (!host.live_[s]) {
        ASSERT_TRUE(host.files_[s].empty())
            << when << " step " << step << ": retired server " << s << " still holds files";
      }
    }
  };
  check_invariants("seed", 0);

  SimTime now = 0;
  for (int step = 1; step <= 40; ++step) {
    now += kMinute;
    const int live_count = [&] {
      int n = 0;
      for (const char alive : host.live_) {
        n += alive != 0;
      }
      return n;
    }();
    switch (rng.NextBelow(4)) {
      case 0:
      case 1: {  // hot-spot burst on a random live server
        const ServerId hot = static_cast<ServerId>(rng.NextBelow(host.NumServers()));
        if (host.live_[hot]) {
          HotspotEvent ev;
          ev.episode.server = static_cast<int>(hot);
          reb.OnWindow({ev}, now);
        }
        break;
      }
      case 2: {  // add, bounded-steal
        if (host.NumServers() >= kMaxServers) {
          break;
        }
        const auto census = host.Census();
        host.AddEmptyServer();
        const ServerId added = static_cast<ServerId>(host.NumServers() - 1);
        const auto moves = reb.OnServerAdded(added, census, now);
        // Bounded movement: the steal expects |census|/(live+1); even with
        // per-file randomness it stays far from a full reshuffle.
        ASSERT_LE(moves.size(), census.size() * 2 / (live_count + 1) + 8)
            << "add stole more than a bounded slice";
        for (const auto& move : moves) {
          ASSERT_EQ(move.to, added) << "an add only moves files TO the newcomer";
        }
        break;
      }
      case 3: {  // retire, full evacuation
        if (live_count <= 1) {
          break;
        }
        const ServerId victim = static_cast<ServerId>(rng.NextBelow(host.NumServers()));
        if (!host.live_[victim]) {
          break;
        }
        std::vector<std::pair<FileId, ServerId>> census;
        for (const auto& [file, bytes] : host.files_[victim]) {
          census.emplace_back(file, victim);
        }
        host.live_[victim] = false;
        const auto moves = reb.OnServerRetired(victim, census, now);
        ASSERT_EQ(moves.size(), census.size()) << "retire must evacuate every file";
        break;
      }
    }
    check_invariants("churn", step);
  }

  if (config.max_total_bytes > 0) {
    EXPECT_LE(reb.moved_bytes(), config.max_total_bytes)
        << "hot-spot movement budget overspent";
  }
  // Re-walking the id space is pure: a second pass routes identically.
  for (FileId f = 0; f < kFiles; ++f) {
    EXPECT_EQ(reb.Route(f), reb.Route(f));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RebalanceSequenceProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace sprite
