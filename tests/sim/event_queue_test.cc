#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <random>
#include <string>
#include <vector>

namespace sprite {
namespace {

TEST(EventQueueTest, StartsAtZero) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0);
  EXPECT_EQ(q.pending_count(), 0u);
  EXPECT_FALSE(q.RunNext());
}

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(5, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, ScheduleDuringDispatch) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(10, [&] {
    order.push_back(1);
    q.Schedule(15, [&] { order.push_back(2); });
    q.ScheduleAfter(1, [&] { order.push_back(3); });
  });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));  // 11 before 15
}

TEST(EventQueueTest, SchedulingInPastThrows) {
  EventQueue q;
  q.Schedule(10, [] {});
  q.RunAll();
  EXPECT_THROW(q.Schedule(5, [] {}), std::logic_error);
  EXPECT_THROW(q.ScheduleAfter(-1, [] {}), std::logic_error);
}

TEST(EventQueueTest, PastSchedulingErrorNamesBothTimestamps) {
  EventQueue q;
  q.Schedule(10, [] {});
  q.RunAll();
  try {
    q.Schedule(5, [] {});
    FAIL() << "Schedule into the past did not throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("now=10"), std::string::npos) << what;
    EXPECT_NE(what.find("requested=5"), std::string::npos) << what;
  }
}

TEST(EventQueueTest, MaxPendingTracksHighWaterMark) {
  EventQueue q;
  EXPECT_EQ(q.max_pending_count(), 0u);
  q.Schedule(10, [] {});
  q.Schedule(20, [] {});
  q.Schedule(30, [] {});
  EXPECT_EQ(q.max_pending_count(), 3u);
  q.RunNext();  // pending drops to 2; the high-water mark must not
  EXPECT_EQ(q.pending_count(), 2u);
  EXPECT_EQ(q.max_pending_count(), 3u);
  q.Schedule(40, [] {});
  q.Schedule(50, [] {});
  EXPECT_EQ(q.max_pending_count(), 4u);
  q.RunAll();
  EXPECT_EQ(q.max_pending_count(), 4u);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  q.Schedule(30, [&] { order.push_back(3); });
  q.RunUntil(20);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.now(), 20);
  EXPECT_EQ(q.pending_count(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  q.RunUntil(1000);
  EXPECT_EQ(q.now(), 1000);
}

// --- RunUntil boundary contract (pinned; the async RPC transport's
// --- completion events depend on these exact semantics) -----------------------

TEST(EventQueueTest, RunUntilDeadlineIsInclusive) {
  // An event scheduled at exactly the deadline runs, and the callback
  // observes its own timestamp (the clock does not jump past it first).
  EventQueue q;
  bool ran = false;
  SimTime observed = -1;
  q.Schedule(500, [&] {
    ran = true;
    observed = q.now();
  });
  q.RunUntil(500);
  EXPECT_TRUE(ran);
  EXPECT_EQ(observed, 500);
  EXPECT_EQ(q.now(), 500);
  EXPECT_EQ(q.pending_count(), 0u);
}

TEST(EventQueueTest, RunUntilPastDeadlineIsNoOpAndNeverRewinds) {
  EventQueue q;
  q.RunUntil(1000);
  ASSERT_EQ(q.now(), 1000);
  bool ran = false;
  q.Schedule(2000, [&] { ran = true; });
  // A deadline behind the clock dispatches nothing and must not rewind time.
  q.RunUntil(500);
  EXPECT_EQ(q.now(), 1000);
  EXPECT_FALSE(ran);
  EXPECT_EQ(q.pending_count(), 1u);
}

TEST(EventQueueTest, ScheduleAtNowRunsAfterPendingEventsAtSameTime) {
  EventQueue q;
  q.RunUntil(100);
  std::vector<int> order;
  q.Schedule(100, [&] { order.push_back(1); });
  q.Schedule(100, [&] { order.push_back(2); });
  q.RunUntil(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.now(), 100);
}

TEST(PeriodicTaskTest, FirstAtNowFiresExactlyOnce) {
  // first_at == now() is a valid start: the first firing dispatches once at
  // the current time — no double fire, no silent skip to first_at + period.
  EventQueue q;
  q.RunUntil(100);
  std::vector<SimTime> fires;
  PeriodicTask task(q, /*first_at=*/100, /*period=*/50, [&](SimTime t) { fires.push_back(t); });
  q.RunUntil(100);
  EXPECT_EQ(fires, (std::vector<SimTime>{100}));
  q.RunUntil(200);
  EXPECT_EQ(fires, (std::vector<SimTime>{100, 150, 200}));
}

TEST(EventQueueTest, RunAllBudgetGuardsRunaway) {
  EventQueue q;
  std::function<void()> self = [&] { q.ScheduleAfter(1, self); };
  q.Schedule(0, self);
  EXPECT_THROW(q.RunAll(/*max_events=*/1000), std::runtime_error);
}

TEST(EventQueueTest, DispatchedCount) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(i, [] {});
  }
  q.RunAll();
  EXPECT_EQ(q.dispatched_count(), 5u);
}

TEST(PeriodicTaskTest, FiresAtPeriod) {
  EventQueue q;
  std::vector<SimTime> fires;
  PeriodicTask task(q, 100, 50, [&](SimTime t) { fires.push_back(t); });
  q.RunUntil(300);
  task.Cancel();
  EXPECT_EQ(fires, (std::vector<SimTime>{100, 150, 200, 250, 300}));
}

TEST(PeriodicTaskTest, CancelStopsFiring) {
  EventQueue q;
  int count = 0;
  PeriodicTask task(q, 10, 10, [&](SimTime) { ++count; });
  q.RunUntil(35);
  task.Cancel();
  q.RunUntil(1000);
  EXPECT_EQ(count, 3);  // fired at 10, 20, 30
}

TEST(PeriodicTaskTest, DestructionCancels) {
  EventQueue q;
  int count = 0;
  {
    PeriodicTask task(q, 10, 10, [&](SimTime) { ++count; });
    q.RunUntil(25);
  }
  q.RunUntil(1000);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTaskTest, CancelFromWithinCallback) {
  EventQueue q;
  int count = 0;
  PeriodicTask* handle = nullptr;
  PeriodicTask task(q, 10, 10, [&](SimTime) {
    ++count;
    if (count == 2) {
      handle->Cancel();
    }
  });
  handle = &task;
  q.RunUntil(1000);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTaskTest, RejectsNonPositivePeriod) {
  EventQueue q;
  EXPECT_THROW(PeriodicTask(q, 0, 0, [](SimTime) {}), std::logic_error);
}

TEST(EventQueueTest, RejectedScheduleLeavesQueueIntact) {
  // Strong exception guarantee: a Schedule into the past throws without
  // consuming a sequence number, touching the heap, or poisoning the pool —
  // the queue keeps dispatching as if the bad call never happened.
  EventQueue q;
  q.Schedule(10, [] {});
  q.RunAll();

  std::vector<int> order;
  q.Schedule(20, [&] { order.push_back(1); });
  q.Schedule(30, [&] { order.push_back(2); });
  const uint64_t dispatched = q.dispatched_count();
  const size_t pending = q.pending_count();
  const size_t max_pending = q.max_pending_count();

  try {
    q.Schedule(5, [&] { order.push_back(99); });
    FAIL() << "Schedule into the past did not throw";
  } catch (const std::logic_error& e) {
    // The diagnostic reports the live queue depth at the failed call.
    EXPECT_NE(std::string(e.what()).find("pending=2"), std::string::npos) << e.what();
  }

  EXPECT_EQ(q.now(), 10);
  EXPECT_EQ(q.pending_count(), pending);
  EXPECT_EQ(q.dispatched_count(), dispatched);
  EXPECT_EQ(q.max_pending_count(), max_pending);

  // Still fully usable, including among the events scheduled before the
  // rejected call.
  q.Schedule(25, [&] { order.push_back(3); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(q.now(), 30);
  EXPECT_EQ(q.dispatched_count(), dispatched + 3);
}

TEST(EventQueueTest, RandomizedCrossCheckAgainstStableOrderModel) {
  // 10k seeded-random events with heavily duplicated timestamps, re-entrant
  // scheduling (callbacks spawning children, recursively), and periodic
  // tasks cancelled three different ways. Cross-checks the full dispatch
  // order against an independent model: dispatch order must equal a stable
  // sort by timestamp of the events in scheduling order (FIFO among equal
  // times), regardless of heap arity or pooling. Also pins the
  // dispatched/max-pending accounting. The sanitize CI pass runs this same
  // test under ASan/UBSan, exercising the pool recycling under churn.
  EventQueue q;
  std::mt19937 rng(20260809u);  // fixed seed: identical on every platform

  struct Scheduled {
    SimTime at;
    int id;
  };
  std::vector<Scheduled> mirror;  // every visible Schedule, in call order
  std::vector<int> dispatch_log;
  std::vector<SimTime> dispatch_times;
  size_t model_pending = 0;
  size_t model_max_pending = 0;

  std::function<void(SimTime, int)> on_dispatch = [&](SimTime at, int id) {
    --model_pending;  // the running event left the heap before its callback
    dispatch_log.push_back(id);
    dispatch_times.push_back(q.now());
    EXPECT_EQ(q.now(), at);
    if (rng() % 20 == 0) {  // ~5%: re-entrant scheduling during dispatch
      const int children = 1 + static_cast<int>(rng() % 2);
      for (int c = 0; c < children; ++c) {
        const SimTime child_at = q.now() + static_cast<SimTime>(rng() % 500);
        const int child_id = static_cast<int>(mirror.size());
        mirror.push_back({child_at, child_id});
        model_max_pending = std::max(model_max_pending, ++model_pending);
        q.Schedule(child_at, [&, child_at, child_id] { on_dispatch(child_at, child_id); });
      }
    }
  };

  constexpr int kMainEvents = 10000;
  for (int i = 0; i < kMainEvents; ++i) {
    // Coarse timestamps force ~10-way duplication per tick.
    const SimTime at = static_cast<SimTime>(rng() % 1000) * 10;
    const int id = static_cast<int>(mirror.size());
    mirror.push_back({at, id});
    model_max_pending = std::max(model_max_pending, ++model_pending);
    q.Schedule(at, [&, at, id] { on_dispatch(at, id); });
  }

  // Periodic tasks riding along (their fires log separately, so they don't
  // perturb the main order pin): one cancels itself mid-callback, one is
  // cancelled while its next arm is already pending, one runs to the drain.
  std::vector<SimTime> self_fires, paused_fires, survivor_fires;
  PeriodicTask* self_handle = nullptr;
  PeriodicTask self_cancel(q, 7, 37, [&](SimTime t) {
    self_fires.push_back(t);
    if (self_fires.size() == 5) {
      self_handle->Cancel();
    }
  });
  self_handle = &self_cancel;
  PeriodicTask paused(q, 11, 101, [&](SimTime t) { paused_fires.push_back(t); });
  PeriodicTask survivor(q, 3, 250, [&](SimTime t) { survivor_fires.push_back(t); });
  model_pending += 3;  // the three first arms
  model_max_pending = std::max(model_max_pending, model_pending);

  q.RunUntil(5000);
  paused.Cancel();  // next arm stays pending; it must dispatch as a no-op
  q.RunUntil(12000);  // past the last main-event timestamp
  survivor.Cancel();
  q.RunAll();  // drain straggler children and the cancelled no-op arms

  // Dispatch order == stable sort by time of the scheduling order. Ties keep
  // mirror order because sequence numbers increase monotonically across
  // every Schedule call, including re-entrant ones.
  std::vector<Scheduled> expected = mirror;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Scheduled& a, const Scheduled& b) { return a.at < b.at; });
  ASSERT_EQ(dispatch_log.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(dispatch_log[i], expected[i].id) << "divergence at dispatch index " << i;
  }
  for (size_t i = 1; i < dispatch_times.size(); ++i) {
    ASSERT_LE(dispatch_times[i - 1], dispatch_times[i]) << "time went backwards at " << i;
  }

  // Periodic fire schedules are pure arithmetic.
  EXPECT_EQ(self_fires, (std::vector<SimTime>{7, 44, 81, 118, 155}));
  std::vector<SimTime> expect_paused;
  for (SimTime t = 11; t <= 5000; t += 101) {
    expect_paused.push_back(t);
  }
  EXPECT_EQ(paused_fires, expect_paused);
  std::vector<SimTime> expect_survivor;
  for (SimTime t = 3; t <= 12000; t += 250) {
    expect_survivor.push_back(t);
  }
  EXPECT_EQ(survivor_fires, expect_survivor);

  // Total dispatches: every mirrored event ran once; the self-cancelling
  // task never armed a sixth time; the other two each left one pending arm
  // that dispatched as a cancelled no-op.
  const uint64_t expected_dispatched = static_cast<uint64_t>(mirror.size()) +
                                       self_fires.size() + (paused_fires.size() + 1) +
                                       (survivor_fires.size() + 1);
  EXPECT_EQ(q.dispatched_count(), expected_dispatched);
  EXPECT_EQ(q.max_pending_count(), model_max_pending);
  EXPECT_EQ(q.pending_count(), 0u);
}

}  // namespace
}  // namespace sprite
