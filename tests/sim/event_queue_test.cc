#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sprite {
namespace {

TEST(EventQueueTest, StartsAtZero) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0);
  EXPECT_EQ(q.pending_count(), 0u);
  EXPECT_FALSE(q.RunNext());
}

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(5, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, ScheduleDuringDispatch) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(10, [&] {
    order.push_back(1);
    q.Schedule(15, [&] { order.push_back(2); });
    q.ScheduleAfter(1, [&] { order.push_back(3); });
  });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));  // 11 before 15
}

TEST(EventQueueTest, SchedulingInPastThrows) {
  EventQueue q;
  q.Schedule(10, [] {});
  q.RunAll();
  EXPECT_THROW(q.Schedule(5, [] {}), std::logic_error);
  EXPECT_THROW(q.ScheduleAfter(-1, [] {}), std::logic_error);
}

TEST(EventQueueTest, PastSchedulingErrorNamesBothTimestamps) {
  EventQueue q;
  q.Schedule(10, [] {});
  q.RunAll();
  try {
    q.Schedule(5, [] {});
    FAIL() << "Schedule into the past did not throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("now=10"), std::string::npos) << what;
    EXPECT_NE(what.find("requested=5"), std::string::npos) << what;
  }
}

TEST(EventQueueTest, MaxPendingTracksHighWaterMark) {
  EventQueue q;
  EXPECT_EQ(q.max_pending_count(), 0u);
  q.Schedule(10, [] {});
  q.Schedule(20, [] {});
  q.Schedule(30, [] {});
  EXPECT_EQ(q.max_pending_count(), 3u);
  q.RunNext();  // pending drops to 2; the high-water mark must not
  EXPECT_EQ(q.pending_count(), 2u);
  EXPECT_EQ(q.max_pending_count(), 3u);
  q.Schedule(40, [] {});
  q.Schedule(50, [] {});
  EXPECT_EQ(q.max_pending_count(), 4u);
  q.RunAll();
  EXPECT_EQ(q.max_pending_count(), 4u);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  q.Schedule(30, [&] { order.push_back(3); });
  q.RunUntil(20);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.now(), 20);
  EXPECT_EQ(q.pending_count(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  q.RunUntil(1000);
  EXPECT_EQ(q.now(), 1000);
}

// --- RunUntil boundary contract (pinned; the async RPC transport's
// --- completion events depend on these exact semantics) -----------------------

TEST(EventQueueTest, RunUntilDeadlineIsInclusive) {
  // An event scheduled at exactly the deadline runs, and the callback
  // observes its own timestamp (the clock does not jump past it first).
  EventQueue q;
  bool ran = false;
  SimTime observed = -1;
  q.Schedule(500, [&] {
    ran = true;
    observed = q.now();
  });
  q.RunUntil(500);
  EXPECT_TRUE(ran);
  EXPECT_EQ(observed, 500);
  EXPECT_EQ(q.now(), 500);
  EXPECT_EQ(q.pending_count(), 0u);
}

TEST(EventQueueTest, RunUntilPastDeadlineIsNoOpAndNeverRewinds) {
  EventQueue q;
  q.RunUntil(1000);
  ASSERT_EQ(q.now(), 1000);
  bool ran = false;
  q.Schedule(2000, [&] { ran = true; });
  // A deadline behind the clock dispatches nothing and must not rewind time.
  q.RunUntil(500);
  EXPECT_EQ(q.now(), 1000);
  EXPECT_FALSE(ran);
  EXPECT_EQ(q.pending_count(), 1u);
}

TEST(EventQueueTest, ScheduleAtNowRunsAfterPendingEventsAtSameTime) {
  EventQueue q;
  q.RunUntil(100);
  std::vector<int> order;
  q.Schedule(100, [&] { order.push_back(1); });
  q.Schedule(100, [&] { order.push_back(2); });
  q.RunUntil(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.now(), 100);
}

TEST(PeriodicTaskTest, FirstAtNowFiresExactlyOnce) {
  // first_at == now() is a valid start: the first firing dispatches once at
  // the current time — no double fire, no silent skip to first_at + period.
  EventQueue q;
  q.RunUntil(100);
  std::vector<SimTime> fires;
  PeriodicTask task(q, /*first_at=*/100, /*period=*/50, [&](SimTime t) { fires.push_back(t); });
  q.RunUntil(100);
  EXPECT_EQ(fires, (std::vector<SimTime>{100}));
  q.RunUntil(200);
  EXPECT_EQ(fires, (std::vector<SimTime>{100, 150, 200}));
}

TEST(EventQueueTest, RunAllBudgetGuardsRunaway) {
  EventQueue q;
  std::function<void()> self = [&] { q.ScheduleAfter(1, self); };
  q.Schedule(0, self);
  EXPECT_THROW(q.RunAll(/*max_events=*/1000), std::runtime_error);
}

TEST(EventQueueTest, DispatchedCount) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(i, [] {});
  }
  q.RunAll();
  EXPECT_EQ(q.dispatched_count(), 5u);
}

TEST(PeriodicTaskTest, FiresAtPeriod) {
  EventQueue q;
  std::vector<SimTime> fires;
  PeriodicTask task(q, 100, 50, [&](SimTime t) { fires.push_back(t); });
  q.RunUntil(300);
  task.Cancel();
  EXPECT_EQ(fires, (std::vector<SimTime>{100, 150, 200, 250, 300}));
}

TEST(PeriodicTaskTest, CancelStopsFiring) {
  EventQueue q;
  int count = 0;
  PeriodicTask task(q, 10, 10, [&](SimTime) { ++count; });
  q.RunUntil(35);
  task.Cancel();
  q.RunUntil(1000);
  EXPECT_EQ(count, 3);  // fired at 10, 20, 30
}

TEST(PeriodicTaskTest, DestructionCancels) {
  EventQueue q;
  int count = 0;
  {
    PeriodicTask task(q, 10, 10, [&](SimTime) { ++count; });
    q.RunUntil(25);
  }
  q.RunUntil(1000);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTaskTest, CancelFromWithinCallback) {
  EventQueue q;
  int count = 0;
  PeriodicTask* handle = nullptr;
  PeriodicTask task(q, 10, 10, [&](SimTime) {
    ++count;
    if (count == 2) {
      handle->Cancel();
    }
  });
  handle = &task;
  q.RunUntil(1000);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTaskTest, RejectsNonPositivePeriod) {
  EventQueue q;
  EXPECT_THROW(PeriodicTask(q, 0, 0, [](SimTime) {}), std::logic_error);
}

}  // namespace
}  // namespace sprite
