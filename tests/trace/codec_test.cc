#include "src/trace/codec.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "src/util/rng.h"

namespace sprite {
namespace {

Record MakeRecord(uint64_t i) {
  Record r;
  r.kind = static_cast<RecordKind>(i % 11);
  r.time = static_cast<SimTime>(i * 1000);
  r.user = static_cast<uint32_t>(i % 52);
  r.client = static_cast<uint32_t>(i % 40);
  r.server = static_cast<uint32_t>(i % 4);
  r.file = i * 7;
  r.handle = i;
  r.mode = static_cast<OpenMode>(i % 3);
  r.migrated = (i % 5) == 0;
  r.is_directory = (i % 9) == 0;
  r.offset_before = static_cast<int64_t>(i * 13);
  r.offset_after = static_cast<int64_t>(i * 17);
  r.file_size = static_cast<int64_t>(i * 4096);
  r.run_read_bytes = static_cast<int64_t>(i * 11);
  r.run_write_bytes = static_cast<int64_t>(i * 3);
  r.io_bytes = static_cast<int64_t>(i % 8192);
  r.peer_client = static_cast<uint32_t>((i + 1) % 40);
  return r;
}

TEST(VarintTest, RoundTripBoundaries) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull, (1ull << 35),
                     ~0ull, ~0ull - 1}) {
    std::string buf;
    PutVarint(buf, v);
    size_t pos = 0;
    const auto decoded = GetVarint(buf, pos);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, TruncatedReturnsNullopt) {
  std::string buf;
  PutVarint(buf, 1ull << 40);
  buf.pop_back();
  size_t pos = 0;
  EXPECT_FALSE(GetVarint(buf, pos).has_value());
}

TEST(ZigZagTest, RoundTrip) {
  const std::vector<int64_t> values = {0,       1,       -1,
                                       2,       -2,      1000000,
                                       -1000000, std::numeric_limits<int64_t>::max(),
                                       std::numeric_limits<int64_t>::min()};
  for (int64_t v : values) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(ZigZagTest, SmallMagnitudesEncodeSmall) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
}

TEST(CodecTest, EmptyTraceRoundTrip) {
  const std::string bytes = EncodeTrace({});
  EXPECT_EQ(DecodeTrace(bytes).size(), 0u);
}

TEST(CodecTest, SingleRecordRoundTrip) {
  TraceLog log{MakeRecord(5)};
  EXPECT_EQ(DecodeTrace(EncodeTrace(log)), log);
}

TEST(CodecTest, ManyRecordsRoundTrip) {
  TraceLog log;
  for (uint64_t i = 0; i < 5000; ++i) {
    log.push_back(MakeRecord(i));
  }
  EXPECT_EQ(DecodeTrace(EncodeTrace(log)), log);
}

TEST(CodecTest, NegativeOffsetsSurvive) {
  Record r = MakeRecord(1);
  r.offset_before = -42;  // defensive: should round-trip even if unexpected
  r.file_size = -1;
  TraceLog log{r};
  EXPECT_EQ(DecodeTrace(EncodeTrace(log)), log);
}

TEST(CodecTest, NonMonotonicTimesSurvive) {
  // Per-server logs are individually ordered, but the codec itself must not
  // require it (delta encoding is signed).
  TraceLog log;
  Record a = MakeRecord(1);
  a.time = 1000;
  Record b = MakeRecord(2);
  b.time = 500;
  log = {a, b};
  EXPECT_EQ(DecodeTrace(EncodeTrace(log)), log);
}

TEST(CodecTest, BadMagicThrows) {
  std::istringstream in("XXXX\x01");
  EXPECT_THROW(TraceReader reader(in), std::runtime_error);
}

TEST(CodecTest, BadVersionThrows) {
  std::string bytes = EncodeTrace({MakeRecord(1)});
  bytes[4] = 99;  // version byte
  std::istringstream in(bytes);
  EXPECT_THROW(TraceReader reader(in), std::runtime_error);
}

TEST(CodecTest, TruncatedRecordThrows) {
  const std::string bytes = EncodeTrace({MakeRecord(123)});
  const std::string cut = bytes.substr(0, bytes.size() - 3);
  EXPECT_THROW(DecodeTrace(cut), std::runtime_error);
}

TEST(CodecTest, CompactEncoding) {
  // Typical records should be far smaller than the raw struct.
  TraceLog log;
  for (uint64_t i = 0; i < 1000; ++i) {
    Record r = MakeRecord(i);
    r.time = static_cast<SimTime>(i * 500);  // small deltas
    log.push_back(r);
  }
  const std::string bytes = EncodeTrace(log);
  EXPECT_LT(bytes.size(), log.size() * sizeof(Record) / 2);
}

TEST(CodecTest, FileRoundTrip) {
  TraceLog log;
  for (uint64_t i = 0; i < 200; ++i) {
    log.push_back(MakeRecord(i));
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "sprite_codec_test.trace").string();
  WriteTraceFile(path, log);
  EXPECT_EQ(ReadTraceFile(path), log);
  std::remove(path.c_str());
}

TEST(CodecTest, MissingFileThrows) {
  EXPECT_THROW(ReadTraceFile("/nonexistent/path/x.trace"), std::runtime_error);
}

TEST(CodecTest, StreamingReaderMatchesReadAll) {
  TraceLog log;
  for (uint64_t i = 0; i < 300; ++i) {
    log.push_back(MakeRecord(i));
  }
  const std::string bytes = EncodeTrace(log);
  std::istringstream in(bytes);
  TraceReader reader(in);
  size_t n = 0;
  while (auto r = reader.Next()) {
    ASSERT_EQ(*r, log[n]);
    ++n;
  }
  EXPECT_EQ(n, log.size());
}

}  // namespace
}  // namespace sprite
