#include "src/trace/merge.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace sprite {
namespace {

Record At(SimTime t, uint32_t user = 0, uint32_t server = 0) {
  Record r;
  r.time = t;
  r.user = user;
  r.server = server;
  return r;
}

TEST(MergeTest, EmptyInputs) {
  EXPECT_TRUE(MergeSorted({}).empty());
  EXPECT_TRUE(MergeSorted({{}, {}, {}}).empty());
}

TEST(MergeTest, SingleLogPassesThrough) {
  TraceLog log{At(1), At(2), At(3)};
  EXPECT_EQ(MergeSorted({log}), log);
}

TEST(MergeTest, InterleavesByTime) {
  TraceLog a{At(1, 0, 0), At(5, 0, 0), At(9, 0, 0)};
  TraceLog b{At(2, 0, 1), At(3, 0, 1), At(10, 0, 1)};
  const TraceLog merged = MergeSorted({a, b});
  ASSERT_EQ(merged.size(), 6u);
  EXPECT_TRUE(IsTimeOrdered(merged));
  EXPECT_EQ(merged[0].time, 1);
  EXPECT_EQ(merged[5].time, 10);
}

TEST(MergeTest, TieBreaksByServerIndexDeterministically) {
  TraceLog a{At(5, 0, 0)};
  TraceLog b{At(5, 0, 1)};
  const TraceLog m1 = MergeSorted({a, b});
  const TraceLog m2 = MergeSorted({a, b});
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(m1[0].server, 0u);
  EXPECT_EQ(m1[1].server, 1u);
}

TEST(MergeTest, FourServersRandomized) {
  Rng rng(1);
  std::vector<TraceLog> logs(4);
  size_t total = 0;
  for (size_t s = 0; s < 4; ++s) {
    SimTime t = 0;
    const size_t n = 100 + rng.NextBelow(200);
    for (size_t i = 0; i < n; ++i) {
      t += static_cast<SimTime>(rng.NextBelow(1000));
      logs[s].push_back(At(t, 0, static_cast<uint32_t>(s)));
    }
    total += n;
  }
  const TraceLog merged = MergeSorted(logs);
  EXPECT_EQ(merged.size(), total);
  EXPECT_TRUE(IsTimeOrdered(merged));
}

TEST(MergeTest, UnsortedInputThrows) {
  TraceLog bad{At(5), At(1)};
  EXPECT_THROW(MergeSorted({bad}), std::invalid_argument);
}

TEST(FilterTest, KeepsMatching) {
  TraceLog log{At(1, 7), At(2, 8), At(3, 7)};
  const TraceLog out = Filter(log, [](const Record& r) { return r.user == 7; });
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].time, 1);
  EXPECT_EQ(out[1].time, 3);
}

TEST(FilterTest, DropUser) {
  TraceLog log{At(1, 7), At(2, 8), At(3, 7)};
  const TraceLog out = DropUser(log, 7);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].user, 8u);
}

TEST(FilterTest, DropUsers) {
  TraceLog log{At(1, 7), At(2, 8), At(3, 9)};
  const TraceLog out = DropUsers(log, {7, 9});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].user, 8u);
}

TEST(SplitByWindowTest, EmptyLog) { EXPECT_TRUE(SplitByWindow({}, 100).empty()); }

TEST(SplitByWindowTest, SplitsRelativeToFirstRecord) {
  TraceLog log{At(1000), At(1050), At(1100), At(1250)};
  const auto windows = SplitByWindow(log, 100);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].size(), 2u);  // 1000, 1050
  EXPECT_EQ(windows[1].size(), 1u);  // 1100 (boundary -> later window)
  EXPECT_EQ(windows[2].size(), 1u);  // 1250
}

TEST(SplitByWindowTest, PreservesEmptyMiddleWindows) {
  TraceLog log{At(0), At(350)};
  const auto windows = SplitByWindow(log, 100);
  ASSERT_EQ(windows.size(), 4u);
  EXPECT_EQ(windows[1].size(), 0u);
  EXPECT_EQ(windows[2].size(), 0u);
}

TEST(SplitByWindowTest, NonPositiveWindowThrows) {
  EXPECT_THROW(SplitByWindow({At(0)}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace sprite
