#include "src/trace/record.h"

#include <gtest/gtest.h>

namespace sprite {
namespace {

TEST(RecordTest, KindNamesDistinct) {
  EXPECT_EQ(RecordKindName(RecordKind::kOpen), "open");
  EXPECT_EQ(RecordKindName(RecordKind::kClose), "close");
  EXPECT_EQ(RecordKindName(RecordKind::kSeek), "seek");
  EXPECT_EQ(RecordKindName(RecordKind::kDelete), "delete");
  EXPECT_EQ(RecordKindName(RecordKind::kSharedWrite), "sharedwrite");
  EXPECT_EQ(RecordKindName(RecordKind::kMigrate), "migrate");
}

TEST(RecordTest, DefaultEquality) {
  Record a;
  Record b;
  EXPECT_EQ(a, b);
  b.time = 1;
  EXPECT_NE(a, b);
}

TEST(RecordTest, IsTimeOrdered) {
  TraceLog log;
  EXPECT_TRUE(IsTimeOrdered(log));
  Record r;
  r.time = 10;
  log.push_back(r);
  EXPECT_TRUE(IsTimeOrdered(log));
  r.time = 10;
  log.push_back(r);  // ties allowed
  EXPECT_TRUE(IsTimeOrdered(log));
  r.time = 5;
  log.push_back(r);
  EXPECT_FALSE(IsTimeOrdered(log));
}

}  // namespace
}  // namespace sprite
