#include "src/trace/summary.h"

#include <gtest/gtest.h>

namespace sprite {
namespace {

Record Make(RecordKind kind, SimTime t, uint32_t user = 0) {
  Record r;
  r.kind = kind;
  r.time = t;
  r.user = user;
  return r;
}

TEST(SummaryTest, EmptyTrace) {
  const TraceSummary s = Summarize({});
  EXPECT_EQ(s.duration, 0);
  EXPECT_EQ(s.distinct_users, 0);
  EXPECT_EQ(s.total_records, 0);
}

TEST(SummaryTest, CountsEventKinds) {
  TraceLog log;
  log.push_back(Make(RecordKind::kOpen, 0));
  log.push_back(Make(RecordKind::kOpen, 1));
  log.push_back(Make(RecordKind::kClose, 2));
  log.push_back(Make(RecordKind::kSeek, 3));
  log.push_back(Make(RecordKind::kDelete, 4));
  log.push_back(Make(RecordKind::kTruncate, 5));
  const TraceSummary s = Summarize(log);
  EXPECT_EQ(s.open_events, 2);
  EXPECT_EQ(s.close_events, 1);
  EXPECT_EQ(s.seek_events, 1);
  EXPECT_EQ(s.delete_events, 1);
  EXPECT_EQ(s.truncate_events, 1);
  EXPECT_EQ(s.duration, 5);
  EXPECT_EQ(s.total_records, 6);
}

TEST(SummaryTest, AccumulatesBytesFromRuns) {
  TraceLog log;
  Record seek = Make(RecordKind::kSeek, 0);
  seek.run_read_bytes = 1000;
  seek.run_write_bytes = 200;
  log.push_back(seek);
  Record close = Make(RecordKind::kClose, 1);
  close.run_read_bytes = 500;
  close.run_write_bytes = 100;
  log.push_back(close);
  Record shared_read = Make(RecordKind::kSharedRead, 2);
  shared_read.io_bytes = 64;
  log.push_back(shared_read);
  Record shared_write = Make(RecordKind::kSharedWrite, 3);
  shared_write.io_bytes = 32;
  log.push_back(shared_write);
  Record dir = Make(RecordKind::kDirRead, 4);
  dir.io_bytes = 4096;
  log.push_back(dir);

  const TraceSummary s = Summarize(log);
  EXPECT_EQ(s.bytes_read, 1000 + 500 + 64);
  EXPECT_EQ(s.bytes_written, 200 + 100 + 32);
  EXPECT_EQ(s.bytes_dir_read, 4096);
  EXPECT_EQ(s.shared_read_events, 1);
  EXPECT_EQ(s.shared_write_events, 1);
}

TEST(SummaryTest, CountsDistinctAndMigrationUsers) {
  TraceLog log;
  log.push_back(Make(RecordKind::kOpen, 0, 1));
  log.push_back(Make(RecordKind::kOpen, 1, 2));
  log.push_back(Make(RecordKind::kOpen, 2, 2));
  Record migrated_io = Make(RecordKind::kClose, 3, 3);
  migrated_io.migrated = true;
  log.push_back(migrated_io);
  log.push_back(Make(RecordKind::kMigrate, 4, 4));
  const TraceSummary s = Summarize(log);
  EXPECT_EQ(s.distinct_users, 4);
  EXPECT_EQ(s.migration_users, 2);  // users 3 and 4
  EXPECT_EQ(s.migrate_events, 1);
}

TEST(SummaryTest, DerivedUnits) {
  TraceLog log;
  Record close = Make(RecordKind::kClose, 2 * kHour);
  close.run_read_bytes = 2 * kMegabyte;
  log.push_back(Make(RecordKind::kOpen, 0));
  log.push_back(close);
  const TraceSummary s = Summarize(log);
  EXPECT_DOUBLE_EQ(s.duration_hours(), 2.0);
  EXPECT_DOUBLE_EQ(s.mbytes_read(), 2.0);
}

}  // namespace
}  // namespace sprite
