#include "src/trace/text_format.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace sprite {
namespace {

Record Sample(uint64_t i) {
  Record r;
  r.kind = static_cast<RecordKind>(i % 11);
  r.time = static_cast<SimTime>(i * 1234);
  r.user = static_cast<uint32_t>(i % 50);
  r.client = static_cast<uint32_t>(i % 26);
  r.server = static_cast<uint32_t>(i % 4);
  r.file = i * 13;
  r.handle = i;
  r.mode = static_cast<OpenMode>(i % 3);
  r.migrated = (i % 3) == 0;
  r.is_directory = (i % 7) == 0;
  r.offset_before = static_cast<int64_t>(i * 100);
  r.offset_after = static_cast<int64_t>(i * 200);
  r.file_size = static_cast<int64_t>(i * 4096);
  r.run_read_bytes = static_cast<int64_t>(i * 11);
  r.run_write_bytes = static_cast<int64_t>(i * 5);
  r.io_bytes = static_cast<int64_t>(i % 9000);
  r.peer_client = static_cast<uint32_t>((i + 3) % 26);
  return r;
}

TEST(TextFormatTest, EmptyLogRoundTrips) {
  EXPECT_TRUE(ParseTextFromString(DumpTextToString({})).empty());
}

TEST(TextFormatTest, RichLogRoundTrips) {
  TraceLog log;
  for (uint64_t i = 0; i < 500; ++i) {
    log.push_back(Sample(i));
  }
  const TraceLog parsed = ParseTextFromString(DumpTextToString(log));
  ASSERT_EQ(parsed.size(), log.size());
  // Note: mode is only serialized for open/seek/close; normalize before
  // comparing.
  for (size_t i = 0; i < log.size(); ++i) {
    Record expected = log[i];
    if (expected.kind != RecordKind::kOpen && expected.kind != RecordKind::kSeek &&
        expected.kind != RecordKind::kClose) {
      expected.mode = OpenMode::kRead;
    }
    EXPECT_EQ(parsed[i], expected) << "record " << i;
  }
}

TEST(TextFormatTest, CommentsAndBlanksIgnored) {
  const TraceLog parsed = ParseTextFromString(
      "# header\n"
      "\n"
      "1000\topen\tuser=3\tclient=1\tserver=0\tfile=42\thandle=7\tmode=rw\tsize=100\n"
      "# trailing comment\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].kind, RecordKind::kOpen);
  EXPECT_EQ(parsed[0].time, 1000);
  EXPECT_EQ(parsed[0].user, 3u);
  EXPECT_EQ(parsed[0].file, 42u);
  EXPECT_EQ(parsed[0].mode, OpenMode::kReadWrite);
  EXPECT_EQ(parsed[0].file_size, 100);
}

TEST(TextFormatTest, DefaultsOmitted) {
  Record r;
  r.kind = RecordKind::kDelete;
  r.time = 5;
  r.file = 9;
  const std::string text = DumpTextToString({r});
  EXPECT_EQ(text.find("off_before"), std::string::npos);
  EXPECT_EQ(text.find("migrated"), std::string::npos);
  const TraceLog parsed = ParseTextFromString(text);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], r);
}

TEST(TextFormatTest, BadKindRejected) {
  EXPECT_THROW(ParseTextFromString("5\tfrobnicate\tuser=1\n"), std::runtime_error);
}

TEST(TextFormatTest, BadIntegerRejected) {
  EXPECT_THROW(ParseTextFromString("5\topen\tuser=xyz\n"), std::runtime_error);
}

TEST(TextFormatTest, UnknownKeyRejected) {
  EXPECT_THROW(ParseTextFromString("5\topen\tbogus=1\n"), std::runtime_error);
}

TEST(TextFormatTest, MissingKindRejected) {
  EXPECT_THROW(ParseTextFromString("5\n"), std::runtime_error);
}

TEST(TextFormatTest, ErrorsCarryLineNumbers) {
  try {
    ParseTextFromString("# one\n1\topen\tuser=1\n2\tbadkind\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace sprite
