#include "src/util/distributions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

namespace sprite {
namespace {

constexpr int kSamples = 100000;

double SampleMean(const Distribution& d, uint64_t seed = 1) {
  Rng rng(seed);
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    sum += d.Sample(rng);
  }
  return sum / kSamples;
}

double SampleMedian(const Distribution& d, uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<double> v(kSamples);
  for (double& x : v) {
    x = d.Sample(rng);
  }
  std::nth_element(v.begin(), v.begin() + kSamples / 2, v.end());
  return v[kSamples / 2];
}

TEST(UniformDistributionTest, BoundsAndMean) {
  UniformDistribution d(2.0, 6.0);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = d.Sample(rng);
    ASSERT_GE(v, 2.0);
    ASSERT_LT(v, 6.0);
  }
  EXPECT_NEAR(SampleMean(d), 4.0, 0.05);
}

TEST(UniformDistributionTest, RejectsInvertedBounds) {
  EXPECT_THROW(UniformDistribution(3.0, 1.0), std::invalid_argument);
}

TEST(ExponentialDistributionTest, MeanMatches) {
  ExponentialDistribution d(7.5);
  EXPECT_NEAR(SampleMean(d), 7.5, 0.2);
}

TEST(ExponentialDistributionTest, RejectsNonPositiveMean) {
  EXPECT_THROW(ExponentialDistribution(0.0), std::invalid_argument);
  EXPECT_THROW(ExponentialDistribution(-1.0), std::invalid_argument);
}

TEST(LogNormalDistributionTest, MedianMatchesParameter) {
  LogNormalDistribution d(2048.0, 1.5);
  EXPECT_NEAR(SampleMedian(d) / 2048.0, 1.0, 0.05);
}

TEST(LogNormalDistributionTest, ZeroSigmaIsConstant) {
  LogNormalDistribution d(100.0, 0.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(d.Sample(rng), 100.0);
  }
}

TEST(LogNormalDistributionTest, RejectsBadParams) {
  EXPECT_THROW(LogNormalDistribution(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogNormalDistribution(1.0, -1.0), std::invalid_argument);
}

TEST(BoundedParetoDistributionTest, SamplesWithinBounds) {
  BoundedParetoDistribution d(1.1, 1e6, 2e7);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double v = d.Sample(rng);
    ASSERT_GE(v, 1e6 * 0.999);
    ASSERT_LE(v, 2e7 * 1.001);
  }
}

TEST(BoundedParetoDistributionTest, HeavyTail) {
  // With alpha just above 1, a nontrivial fraction of mass should exceed
  // 10x the minimum.
  BoundedParetoDistribution d(1.1, 1.0, 1000.0);
  Rng rng(1);
  int above = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (d.Sample(rng) > 10.0) {
      ++above;
    }
  }
  const double fraction = static_cast<double>(above) / kSamples;
  EXPECT_GT(fraction, 0.05);
  EXPECT_LT(fraction, 0.25);
}

TEST(BoundedParetoDistributionTest, RejectsBadParams) {
  EXPECT_THROW(BoundedParetoDistribution(0.0, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(BoundedParetoDistribution(1.0, 0.0, 2.0), std::invalid_argument);
  EXPECT_THROW(BoundedParetoDistribution(1.0, 3.0, 2.0), std::invalid_argument);
}

TEST(ConstantDistributionTest, AlwaysSameValue) {
  ConstantDistribution d(42.0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(d.Sample(rng), 42.0);
  }
}

TEST(MixtureDistributionTest, WeightsRespected) {
  MixtureDistribution d({
      {0.75, std::make_shared<ConstantDistribution>(1.0)},
      {0.25, std::make_shared<ConstantDistribution>(100.0)},
  });
  Rng rng(1);
  int low = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (d.Sample(rng) < 50.0) {
      ++low;
    }
  }
  EXPECT_NEAR(static_cast<double>(low) / kSamples, 0.75, 0.01);
}

TEST(MixtureDistributionTest, RejectsEmptyAndZeroWeight) {
  EXPECT_THROW(MixtureDistribution({}), std::invalid_argument);
  EXPECT_THROW(MixtureDistribution({{0.0, std::make_shared<ConstantDistribution>(1.0)}}),
               std::invalid_argument);
}

TEST(EmpiricalDistributionTest, QuantileInterpolates) {
  EmpiricalDistribution d({{0.0, 0.0}, {10.0, 0.5}, {100.0, 1.0}});
  EXPECT_DOUBLE_EQ(d.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.25), 5.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.75), 55.0);
  EXPECT_DOUBLE_EQ(d.Quantile(1.0), 100.0);
}

TEST(EmpiricalDistributionTest, CdfIsInverseOfQuantile) {
  EmpiricalDistribution d({{1.0, 0.0}, {2.0, 0.3}, {8.0, 0.9}, {20.0, 1.0}});
  for (double q : {0.05, 0.3, 0.5, 0.77, 0.95}) {
    EXPECT_NEAR(d.CdfAt(d.Quantile(q)), q, 1e-9);
  }
}

TEST(EmpiricalDistributionTest, SamplesFollowCdf) {
  EmpiricalDistribution d({{0.0, 0.0}, {1.0, 0.8}, {10.0, 1.0}});
  Rng rng(1);
  int below_one = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (d.Sample(rng) <= 1.0) {
      ++below_one;
    }
  }
  EXPECT_NEAR(static_cast<double>(below_one) / kSamples, 0.8, 0.01);
}

TEST(EmpiricalDistributionTest, RejectsBadAnchors) {
  using P = EmpiricalDistribution::Point;
  EXPECT_THROW(EmpiricalDistribution(std::vector<P>{{0.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(EmpiricalDistribution(std::vector<P>{{0.0, 0.1}, {1.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(EmpiricalDistribution(std::vector<P>{{0.0, 0.0}, {1.0, 0.9}}),
               std::invalid_argument);
  EXPECT_THROW(EmpiricalDistribution(std::vector<P>{{5.0, 0.0}, {1.0, 1.0}}),
               std::invalid_argument);
}

TEST(ZipfDistributionTest, RankZeroMostPopular) {
  ZipfDistribution d(100, 1.0);
  Rng rng(1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[d.Sample(rng)];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[0], counts[99] * 10);
}

TEST(ZipfDistributionTest, SamplesWithinRange) {
  ZipfDistribution d(7, 0.8);
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(d.Sample(rng), 7u);
  }
}

TEST(ZipfDistributionTest, SingleElement) {
  ZipfDistribution d(1, 1.0);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(d.Sample(rng), 0u);
  }
}

TEST(DistributionTest, SampleIntNonNegativeAndRounds) {
  ConstantDistribution d(3.6);
  Rng rng(1);
  EXPECT_EQ(d.SampleInt(rng), 4);
  ConstantDistribution negative(-5.0);
  EXPECT_EQ(negative.SampleInt(rng), 0);
}

}  // namespace
}  // namespace sprite
