#include "src/util/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sprite {
namespace {

TEST(LogHistogramTest, RejectsBadParameters) {
  EXPECT_THROW(LogHistogram(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 5.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 1.0), std::invalid_argument);
}

TEST(LogHistogramTest, UnderflowAndOverflowBuckets) {
  LogHistogram h(1.0, 1024.0, 2.0);
  h.Add(0.5);       // underflow
  h.Add(1e9);       // overflow
  h.Add(16.0);      // interior
  EXPECT_DOUBLE_EQ(h.total_weight(), 3.0);
  EXPECT_GT(h.BucketWeight(0), 0.0);
  EXPECT_GT(h.BucketWeight(h.bucket_count() - 1), 0.0);
}

TEST(LogHistogramTest, CumulativeFractionReachesOne) {
  LogHistogram h(1.0, 1 << 20, 2.0);
  for (int i = 0; i < 100; ++i) {
    h.Add(std::pow(2.0, i % 20) * 1.5);
  }
  EXPECT_NEAR(h.CumulativeFraction(h.bucket_count() - 1), 1.0, 1e-12);
}

TEST(LogHistogramTest, CumulativeFractionMonotone) {
  LogHistogram h(1.0, 4096.0, 2.0);
  for (double v : {0.1, 1.0, 3.0, 17.0, 300.0, 5000.0, 4096.0}) {
    h.Add(v);
  }
  double prev = 0.0;
  for (size_t i = 0; i < h.bucket_count(); ++i) {
    const double f = h.CumulativeFraction(i);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(LogHistogramTest, ApproxQuantileBracketsTrueValue) {
  LogHistogram h(1.0, 1 << 24, 2.0);
  // 1000 values log-uniform in [16, 65536].
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>(i) / 999.0;
    h.Add(16.0 * std::pow(65536.0 / 16.0, t));
  }
  const double median = h.ApproxQuantile(0.5);
  // True median is 16 * sqrt(4096) = 1024; allow a bucket of slack.
  EXPECT_GT(median, 512.0);
  EXPECT_LT(median, 2048.0);
}

TEST(LogHistogramTest, WeightsCount) {
  LogHistogram h(1.0, 100.0, 10.0);
  h.Add(5.0, 3.0);
  h.Add(50.0, 1.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 4.0);
  // 75% of weight at 5.0 -> quantile(0.5) must be in the 5.0 bucket range.
  EXPECT_LE(h.ApproxQuantile(0.5), 10.0);
}

TEST(LogHistogramTest, MergeCombinesWeights) {
  LogHistogram a(1.0, 100.0, 2.0);
  LogHistogram b(1.0, 100.0, 2.0);
  a.Add(2.0);
  b.Add(50.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.total_weight(), 2.0);
}

TEST(LogHistogramTest, MergeRejectsIncompatible) {
  LogHistogram a(1.0, 100.0, 2.0);
  LogHistogram b(2.0, 100.0, 2.0);
  EXPECT_THROW(a.Merge(b), std::invalid_argument);
}

TEST(LogHistogramTest, ZeroWeightIgnored) {
  LogHistogram h(1.0, 100.0, 2.0);
  h.Add(5.0, 0.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(0.5), 0.0);
}

TEST(LogHistogramTest, NegativeWeightIgnored) {
  LogHistogram h(1.0, 100.0, 2.0);
  h.Add(5.0, 2.0);
  h.Add(5.0, -1.0);  // must not subtract
  EXPECT_DOUBLE_EQ(h.total_weight(), 2.0);
  for (size_t i = 0; i < h.bucket_count(); ++i) {
    EXPECT_GE(h.BucketWeight(i), 0.0);
  }
}

TEST(LogHistogramTest, BoundaryValuesLandInTheRightBuckets) {
  LogHistogram h(10.0, 160.0, 2.0);
  // Layout: [0,10) [10,20) [20,40) [40,80) [80,160] (>160).
  h.Add(10.0);  // exactly min -> first log bucket, not underflow
  EXPECT_DOUBLE_EQ(h.BucketWeight(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BucketWeight(1), 1.0);

  h.Add(160.0);  // exactly max -> last non-overflow bucket
  EXPECT_DOUBLE_EQ(h.BucketWeight(h.bucket_count() - 2), 1.0);
  EXPECT_DOUBLE_EQ(h.BucketWeight(h.bucket_count() - 1), 0.0);

  h.Add(160.0001);  // just above max -> overflow bucket
  EXPECT_DOUBLE_EQ(h.BucketWeight(h.bucket_count() - 1), 1.0);

  h.Add(9.9999);  // just below min -> underflow bucket
  EXPECT_DOUBLE_EQ(h.BucketWeight(0), 1.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 4.0);
}

TEST(LogHistogramTest, MergeCombinesBucketwise) {
  LogHistogram a(1.0, 64.0, 2.0);
  LogHistogram b(1.0, 64.0, 2.0);
  a.Add(0.5);       // underflow
  a.Add(3.0, 2.0);  // [2,4)
  b.Add(3.0);       // [2,4)
  b.Add(1000.0);    // overflow
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.total_weight(), 5.0);
  EXPECT_DOUBLE_EQ(a.BucketWeight(0), 1.0);
  EXPECT_DOUBLE_EQ(a.BucketWeight(a.bucket_count() - 1), 1.0);
  // The [2,4) bucket holds both contributions: index 1 + floor(log2(3)) = 2.
  EXPECT_DOUBLE_EQ(a.BucketWeight(2), 3.0);
  // b is unchanged by the merge.
  EXPECT_DOUBLE_EQ(b.total_weight(), 2.0);
}

TEST(LogHistogramTest, SubtractRemovesBaselineBucketwise) {
  LogHistogram h(1.0, 64.0, 2.0);
  h.Add(3.0, 2.0);   // [2,4)
  h.Add(10.0);       // [8,16)
  LogHistogram baseline = h;  // snapshot at a window boundary
  h.Add(3.0);        // window adds one more fast sample
  h.Add(1000.0);     // ... and an overflow
  h.Subtract(baseline);
  EXPECT_DOUBLE_EQ(h.total_weight(), 2.0);
  EXPECT_DOUBLE_EQ(h.BucketWeight(2), 1.0);  // the new [2,4) sample survives
  EXPECT_DOUBLE_EQ(h.BucketWeight(h.bucket_count() - 1), 1.0);
  // The quantiles now describe only the window's samples.
  EXPECT_GT(h.ApproxQuantile(0.99), 64.0);
  // The baseline itself is untouched.
  EXPECT_DOUBLE_EQ(baseline.total_weight(), 3.0);
}

TEST(LogHistogramTest, SubtractClampsNegativeDifferencesToZero) {
  // A baseline with weight the current histogram lacks (e.g. after an
  // external Reset) must clamp at zero rather than produce negative mass.
  LogHistogram h(1.0, 64.0, 2.0);
  LogHistogram baseline(1.0, 64.0, 2.0);
  baseline.Add(3.0, 5.0);
  h.Add(3.0);
  h.Add(10.0);
  h.Subtract(baseline);
  EXPECT_DOUBLE_EQ(h.BucketWeight(2), 0.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 1.0);
}

TEST(LogHistogramTest, SubtractRejectsIncompatibleLayouts) {
  LogHistogram h(1.0, 64.0, 2.0);
  LogHistogram other_range(1.0, 128.0, 2.0);
  LogHistogram other_base(1.0, 64.0, 1.25);
  EXPECT_THROW(h.Subtract(other_range), std::invalid_argument);
  EXPECT_THROW(h.Subtract(other_base), std::invalid_argument);
}

TEST(LogHistogramTest, ResetZeroesWeightsButKeepsLayout) {
  LogHistogram h(1.0, 100.0, 2.0);
  const size_t buckets = h.bucket_count();
  h.Add(0.5);
  h.Add(7.0, 3.0);
  h.Add(1e6);
  h.Reset();
  EXPECT_EQ(h.bucket_count(), buckets);
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
  for (size_t i = 0; i < h.bucket_count(); ++i) {
    EXPECT_DOUBLE_EQ(h.BucketWeight(i), 0.0);
  }
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(0.5), 0.0);
  h.Add(7.0);  // still usable after reset
  EXPECT_DOUBLE_EQ(h.total_weight(), 1.0);
}

}  // namespace
}  // namespace sprite
