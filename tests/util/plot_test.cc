#include "src/util/plot.h"

#include <gtest/gtest.h>

namespace sprite {
namespace {

TEST(CdfPlotTest, RejectsBadFrames) {
  EXPECT_THROW(CdfPlot(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(CdfPlot(10.0, 1.0), std::invalid_argument);
  EXPECT_THROW(CdfPlot(1.0, 10.0, 4), std::invalid_argument);
}

TEST(CdfPlotTest, RendersFrameAndLegend) {
  CdfPlot plot(1.0, 1000.0, 40, 8);
  plot.AddCurve('a', "first", [](double x) { return x / 1000.0; });
  const std::string out = plot.Render([](double x) { return std::to_string((int)x); });
  EXPECT_NE(out.find("100%"), std::string::npos);
  EXPECT_NE(out.find("0%"), std::string::npos);
  EXPECT_NE(out.find("a = first"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
  EXPECT_NE(out.find("1000"), std::string::npos);
}

TEST(CdfPlotTest, MonotoneCurveRisesLeftToRight) {
  CdfPlot plot(1.0, 100.0, 40, 10);
  plot.AddCurve('#', "cdf", [](double x) { return x / 100.0; });
  const std::string out = plot.Render([](double) { return ""; });
  // The '#' in the top row must appear to the right of the '#' in the
  // bottom data row.
  const size_t first_line_end = out.find('\n');
  const std::string top = out.substr(0, first_line_end);
  size_t bottom_start = 0;
  for (int i = 0; i < 9; ++i) {
    bottom_start = out.find('\n', bottom_start) + 1;
  }
  const std::string bottom = out.substr(bottom_start, out.find('\n', bottom_start) - bottom_start);
  const size_t top_pos = top.find('#');
  const size_t bottom_pos = bottom.find('#');
  ASSERT_NE(top_pos, std::string::npos);
  ASSERT_NE(bottom_pos, std::string::npos);
  EXPECT_GT(top_pos, bottom_pos);
}

TEST(CdfPlotTest, OverlapMarked) {
  CdfPlot plot(1.0, 100.0, 30, 6);
  plot.AddCurve('a', "one", [](double) { return 0.5; });
  plot.AddCurve('b', "two", [](double) { return 0.5; });
  const std::string out = plot.Render([](double) { return ""; });
  EXPECT_NE(out.find('*'), std::string::npos) << "identical curves must show overlap";
}

TEST(CdfPlotTest, CurveClamped) {
  CdfPlot plot(1.0, 100.0, 30, 6);
  plot.AddCurve('c', "wild", [](double x) { return x > 10 ? 1.7 : -0.3; });
  EXPECT_NO_THROW(plot.Render([](double) { return ""; }));
}

}  // namespace
}  // namespace sprite
