#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace sprite {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng rng(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(rng());
  }
  EXPECT_GT(seen.size(), 95u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(3);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngTest, NextBelowIsRoughlyUniform) {
  Rng rng(13);
  constexpr uint64_t kBound = 10;
  std::vector<int> counts(kBound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.NextBelow(kBound)];
  }
  for (uint64_t k = 0; k < kBound; ++k) {
    EXPECT_NEAR(counts[k], n / static_cast<int>(kBound), n / 100);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextBoolEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
    EXPECT_FALSE(rng.NextBool(-0.5));
    EXPECT_TRUE(rng.NextBool(1.5));
  }
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(29);
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.02);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextExponential(5.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(37);
  Rng child = parent.Fork();
  // Child and parent streams should not be correlated.
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent() == child()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(41);
  Rng b(41);
  Rng ca = a.Fork();
  Rng cb = b.Fork();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ca(), cb());
  }
}

}  // namespace
}  // namespace sprite
