#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sprite {
namespace {

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(StreamingStatsTest, SingleValue) {
  StreamingStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(StreamingStatsTest, KnownMeanAndStddev) {
  StreamingStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic population-stddev example
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStatsTest, WeightedEquivalentToRepeated) {
  StreamingStats weighted;
  weighted.AddWeighted(3.0, 4.0);
  weighted.AddWeighted(7.0, 2.0);
  StreamingStats repeated;
  for (int i = 0; i < 4; ++i) {
    repeated.Add(3.0);
  }
  for (int i = 0; i < 2; ++i) {
    repeated.Add(7.0);
  }
  EXPECT_NEAR(weighted.mean(), repeated.mean(), 1e-12);
  EXPECT_NEAR(weighted.stddev(), repeated.stddev(), 1e-12);
}

TEST(StreamingStatsTest, ZeroOrNegativeWeightIgnored) {
  StreamingStats s;
  s.AddWeighted(100.0, 0.0);
  s.AddWeighted(200.0, -1.0);
  EXPECT_EQ(s.count(), 0);
}

TEST(StreamingStatsTest, MergeMatchesCombinedStream) {
  StreamingStats a;
  StreamingStats b;
  StreamingStats all;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10.0 + i;
    ((i % 2 == 0) ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_EQ(a.count(), all.count());
}

TEST(StreamingStatsTest, MergeWithEmpty) {
  StreamingStats a;
  a.Add(1.0);
  StreamingStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(WeightedSamplesTest, EmptyBehaviour) {
  WeightedSamples s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.FractionAtOrBelow(10.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
}

TEST(WeightedSamplesTest, UnweightedQuantiles) {
  WeightedSamples s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.FractionAtOrBelow(50.0), 0.5);
  EXPECT_DOUBLE_EQ(s.FractionAtOrBelow(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.FractionAtOrBelow(1000.0), 1.0);
}

TEST(WeightedSamplesTest, WeightsShiftQuantiles) {
  WeightedSamples s;
  s.Add(1.0, 1.0);
  s.Add(10.0, 9.0);
  EXPECT_DOUBLE_EQ(s.FractionAtOrBelow(1.0), 0.1);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(s.WeightedMean(), 0.1 * 1.0 + 0.9 * 10.0);
}

TEST(WeightedSamplesTest, InterleavedAddAndQuery) {
  WeightedSamples s;
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.FractionAtOrBelow(5.0), 1.0);
  s.Add(1.0);
  // Re-query after adding out-of-order value; must re-sort.
  EXPECT_DOUBLE_EQ(s.FractionAtOrBelow(1.0), 0.5);
  EXPECT_DOUBLE_EQ(s.Quantile(0.25), 1.0);
}

TEST(WeightedSamplesTest, CdfCurveMonotone) {
  WeightedSamples s;
  for (int i = 0; i < 1000; ++i) {
    s.Add(static_cast<double>(i % 37), 1.0 + (i % 5));
  }
  const auto curve = s.CdfCurve(16);
  ASSERT_FALSE(curve.empty());
  EXPECT_LE(curve.size(), 16u);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].value, curve[i - 1].value);
    EXPECT_GE(curve[i].fraction, curve[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(curve.back().fraction, 1.0);
}

TEST(WeightedSamplesTest, CdfCurveKeepsAllDistinctWhenFew) {
  WeightedSamples s;
  s.Add(1.0);
  s.Add(2.0);
  s.Add(2.0);
  s.Add(3.0);
  const auto curve = s.CdfCurve(64);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].fraction, 0.25);
  EXPECT_DOUBLE_EQ(curve[1].fraction, 0.75);
  EXPECT_DOUBLE_EQ(curve[2].fraction, 1.0);
}

}  // namespace
}  // namespace sprite
