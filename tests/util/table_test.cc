#include "src/util/table.h"

#include <gtest/gtest.h>

namespace sprite {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"Name", "Paper", "Measured"});
  t.AddRow({"throughput", "8.0", "7.3"});
  t.AddRow({"x", "1", "2"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("throughput"), std::string::npos);
  // Header separator exists.
  EXPECT_NE(out.find("---"), std::string::npos);
  // All lines containing '|' have it at consistent positions.
  const size_t first_pipe = out.find('|');
  ASSERT_NE(first_pipe, std::string::npos);
  size_t line_start = 0;
  while (line_start < out.size()) {
    const size_t line_end = out.find('\n', line_start);
    const std::string line = out.substr(line_start, line_end - line_start);
    if (line.find('|') != std::string::npos) {
      EXPECT_EQ(line.find('|'), first_pipe) << line;
    }
    line_start = line_end + 1;
  }
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable t({"A", "B", "C"});
  t.AddRow({"only"});
  EXPECT_NO_THROW(t.Render());
}

TEST(TextTableTest, TooManyCellsThrows) {
  TextTable t({"A"});
  EXPECT_THROW(t.AddRow({"1", "2"}), std::invalid_argument);
}

TEST(TextTableTest, EmptyHeadersThrow) { EXPECT_THROW(TextTable({}), std::invalid_argument); }

TEST(TextTableTest, SeparatorRendersRule) {
  TextTable t({"A", "B"});
  t.AddRow({"1", "2"});
  t.AddSeparator();
  t.AddRow({"3", "4"});
  const std::string out = t.Render();
  // Two rules: one under the header, one mid-table.
  size_t count = 0;
  size_t pos = 0;
  while ((pos = out.find("-+-", pos)) != std::string::npos) {
    ++count;
    pos += 3;
  }
  EXPECT_EQ(count, 2u);
}

TEST(FormatHelpersTest, FormatFixed) {
  EXPECT_EQ(FormatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(FormatFixed(3.0, 0), "3");
}

TEST(FormatHelpersTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.5), "50.0%");
  EXPECT_EQ(FormatPercent(0.123, 0), "12%");
}

TEST(FormatHelpersTest, FormatWithStddev) { EXPECT_EQ(FormatWithStddev(8.0, 36.0), "8.0 (36.0)"); }

TEST(FormatHelpersTest, FormatWithRange) {
  EXPECT_EQ(FormatWithRange(0.34, 0.18, 0.56), "0.34 (0.18-0.56)");
}

}  // namespace
}  // namespace sprite
