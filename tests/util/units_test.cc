#include "src/util/units.h"

#include <gtest/gtest.h>

namespace sprite {
namespace {

TEST(UnitsTest, ConstantsConsistent) {
  EXPECT_EQ(kSecond, 1000000);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
  EXPECT_EQ(kBlockSize, 4096);
}

TEST(UnitsTest, ToFromSecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(ToSeconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(ToSeconds(30 * kSecond), 30.0);
  EXPECT_EQ(FromSeconds(2.5), 2500000);
}

TEST(UnitsTest, BlocksForBytes) {
  EXPECT_EQ(BlocksForBytes(0), 0);
  EXPECT_EQ(BlocksForBytes(1), 1);
  EXPECT_EQ(BlocksForBytes(4096), 1);
  EXPECT_EQ(BlocksForBytes(4097), 2);
  EXPECT_EQ(BlocksForBytes(3 * 4096), 3);
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2 KB");
  EXPECT_EQ(FormatBytes(7 * kMegabyte + kMegabyte / 5), "7.20 MB");
  EXPECT_EQ(FormatBytes(3 * kGigabyte), "3 GB");
  EXPECT_EQ(FormatBytes(-2048), "-2 KB");
}

TEST(UnitsTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(38), "38 us");
  EXPECT_EQ(FormatDuration(1400 * kMillisecond), "1.40 s");
  EXPECT_EQ(FormatDuration(90 * kMinute), "1.50 h");
  EXPECT_EQ(FormatDuration(-kSecond), "-1 s");
}

}  // namespace
}  // namespace sprite
