#include "src/workload/file_space.h"

#include <gtest/gtest.h>

#include <set>

namespace sprite {
namespace {

WorkloadParams TestParams() {
  WorkloadParams p;
  p.num_users = 4;
  return p;
}

TEST(FileSpaceTest, IdRangesDisjoint) {
  Rng rng(1);
  WorkloadParams params = TestParams();
  FileSpace files(params, rng);
  std::set<FileId> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(files.SampleExecutable(rng));
  }
  for (UserId u = 0; u < 4; ++u) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(seen.count(files.SampleUserFile(u, rng)), 0u);
    }
    ASSERT_EQ(seen.count(files.UserMailbox(u)), 0u);
    ASSERT_EQ(seen.count(files.UserDirectory(u)), 0u);
    ASSERT_EQ(seen.count(files.UserSimInput(u)), 0u);
    ASSERT_EQ(seen.count(files.UserDataFile(u)), 0u);
  }
  ASSERT_EQ(seen.count(files.NewTempFile()), 0u);
  ASSERT_EQ(seen.count(files.BackingFile(0)), 0u);
}

TEST(FileSpaceTest, UserFilesDisjointAcrossUsers) {
  Rng rng(2);
  WorkloadParams params = TestParams();
  FileSpace files(params, rng);
  std::set<FileId> user0;
  for (int i = 0; i < 500; ++i) {
    user0.insert(files.SampleUserFile(0, rng));
  }
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(user0.count(files.SampleUserFile(1, rng)), 0u);
  }
}

TEST(FileSpaceTest, SpecialFilesOutsidePopularityRange) {
  Rng rng(3);
  WorkloadParams params = TestParams();
  FileSpace files(params, rng);
  for (int i = 0; i < 2000; ++i) {
    const FileId f = files.SampleUserFile(2, rng);
    ASSERT_NE(f, files.UserSimInput(2));
    ASSERT_NE(f, files.UserDataFile(2));
  }
}

TEST(FileSpaceTest, TempFilesUnique) {
  Rng rng(4);
  WorkloadParams params = TestParams();
  FileSpace files(params, rng);
  std::set<FileId> temps;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(temps.insert(files.NewTempFile()).second);
  }
}

TEST(FileSpaceTest, ExecutableSizesWithinBounds) {
  Rng rng(5);
  WorkloadParams params = TestParams();
  FileSpace files(params, rng);
  for (int i = 0; i < 200; ++i) {
    const FileId exec = files.SampleExecutable(rng);
    const int64_t size = files.ExecutableSize(exec);
    ASSERT_GE(size, params.executable_min);
    ASSERT_LE(size, params.executable_max);
  }
}

TEST(FileSpaceTest, ExecutableSizeRejectsForeignId) {
  Rng rng(6);
  WorkloadParams params = TestParams();
  FileSpace files(params, rng);
  EXPECT_THROW(files.ExecutableSize(files.UserMailbox(0)), std::out_of_range);
}

TEST(FileSpaceTest, PersistentSizesMostlySmallWithHeavyTail) {
  Rng rng(7);
  WorkloadParams params = TestParams();
  FileSpace files(params, rng);
  int small = 0;
  int huge = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const int64_t size = files.SamplePersistentSize(rng);
    ASSERT_GE(size, 1);
    if (size <= 10 * kKilobyte) {
      ++small;
    }
    if (size >= kMegabyte) {
      ++huge;
    }
  }
  EXPECT_GT(static_cast<double>(small) / n, 0.6) << "most files are small";
  EXPECT_GT(huge, 0) << "multi-megabyte files must exist";
}

TEST(FileSpaceTest, RejectsBadParams) {
  Rng rng(8);
  WorkloadParams params = TestParams();
  params.num_users = 0;
  EXPECT_THROW(FileSpace(params, rng), std::invalid_argument);
  params = TestParams();
  params.files_per_user = 100000;
  EXPECT_THROW(FileSpace(params, rng), std::invalid_argument);
}

}  // namespace
}  // namespace sprite
