#include "src/workload/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "src/trace/summary.h"

namespace sprite {
namespace {

WorkloadParams QuickParams() {
  WorkloadParams p;
  p.num_users = 8;
  p.seed = 42;
  return p;
}

ClusterConfig QuickCluster() {
  ClusterConfig c;
  c.num_clients = 8;
  c.num_servers = 2;
  return c;
}

TEST(GeneratorTest, ProducesOrderedNonEmptyTrace) {
  Generator generator(QuickParams(), QuickCluster());
  const TraceLog trace = generator.Run(30 * kMinute);
  ASSERT_FALSE(trace.empty());
  EXPECT_TRUE(IsTimeOrdered(trace));
}

TEST(GeneratorTest, DeterministicForSeed) {
  auto run = [] {
    Generator generator(QuickParams(), QuickCluster());
    return generator.Run(10 * kMinute);
  };
  EXPECT_EQ(run(), run());
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  WorkloadParams a = QuickParams();
  WorkloadParams b = QuickParams();
  b.seed = 43;
  Generator ga(a, QuickCluster());
  Generator gb(b, QuickCluster());
  EXPECT_NE(ga.Run(10 * kMinute), gb.Run(10 * kMinute));
}

TEST(GeneratorTest, RunTwiceThrows) {
  Generator generator(QuickParams(), QuickCluster());
  generator.Run(kMinute);
  EXPECT_THROW(generator.Run(kMinute), std::logic_error);
}

TEST(GeneratorTest, NonPositiveDurationThrows) {
  Generator generator(QuickParams(), QuickCluster());
  EXPECT_THROW(generator.Run(0), std::invalid_argument);
}

TEST(GeneratorTest, WarmupDiscardedFromTraceAndCounters) {
  WorkloadParams params = QuickParams();
  Generator generator(params, QuickCluster());
  const TraceLog trace = generator.Run(20 * kMinute, /*warmup=*/20 * kMinute);
  for (const Record& r : trace) {
    ASSERT_GE(r.time, 20 * kMinute) << "warmup records must be discarded";
  }
}

TEST(GeneratorTest, TraceHasEveryMajorEventKind) {
  Generator generator(QuickParams(), QuickCluster());
  const TraceLog trace = generator.Run(2 * kHour);
  const TraceSummary s = Summarize(trace);
  EXPECT_GT(s.open_events, 0);
  EXPECT_GT(s.close_events, 0);
  EXPECT_GT(s.seek_events, 0);
  EXPECT_GT(s.delete_events, 0);
  EXPECT_GT(s.truncate_events, 0);
  EXPECT_GT(s.bytes_read, 0);
  EXPECT_GT(s.bytes_written, 0);
  EXPECT_GT(s.bytes_dir_read, 0);
  EXPECT_GT(s.migration_users, 0);
}

TEST(GeneratorTest, OpensAndClosesBalance) {
  Generator generator(QuickParams(), QuickCluster());
  const TraceLog trace = generator.Run(kHour);
  const TraceSummary s = Summarize(trace);
  // In-flight accesses at the cut-off may leave a small imbalance.
  EXPECT_NEAR(static_cast<double>(s.close_events), static_cast<double>(s.open_events),
              static_cast<double>(s.open_events) * 0.02 + 20);
}

TEST(GeneratorTest, MultipleUsersAndClientsActive) {
  Generator generator(QuickParams(), QuickCluster());
  const TraceLog trace = generator.Run(kHour);
  std::set<uint32_t> users;
  std::set<uint32_t> clients;
  for (const Record& r : trace) {
    users.insert(r.user);
    clients.insert(r.client);
  }
  EXPECT_GE(users.size(), 6u);
  EXPECT_GE(clients.size(), 6u);
}

TEST(GeneratorTest, MigratedRecordsPresent) {
  Generator generator(QuickParams(), QuickCluster());
  const TraceLog trace = generator.Run(2 * kHour);
  int64_t migrated_io = 0;
  for (const Record& r : trace) {
    if (r.migrated && r.kind != RecordKind::kMigrate) {
      ++migrated_io;
    }
  }
  EXPECT_GT(migrated_io, 0);
}

TEST(GeneratorTest, CountersPopulated) {
  Generator generator(QuickParams(), QuickCluster());
  generator.Run(kHour);
  const CacheCounters cache = generator.cluster().AggregateCacheCounters();
  EXPECT_GT(cache.read_ops, 0);
  EXPECT_GT(cache.write_ops, 0);
  EXPECT_GT(cache.paging_read_ops, 0);
  const TrafficCounters traffic = generator.cluster().AggregateTrafficCounters();
  EXPECT_GT(traffic.file_read_cacheable, 0);
  EXPECT_GT(traffic.paging_read_backing, 0);
  const ServerCounters server = generator.cluster().AggregateServerCounters();
  EXPECT_GT(server.file_opens, 0);
}

TEST(GeneratorTest, InstrumentationRecordsStripped) {
  // The paper's merge pipeline removed the trace-collector's own writes and
  // the tape backup's reads; ours does the same.
  Generator generator(QuickParams(), QuickCluster());
  const TraceLog trace = generator.Run(45 * kMinute);
  EXPECT_GT(generator.records_stripped(), 0)
      << "the collector and backup daemons must have produced records";
  for (const Record& r : trace) {
    ASSERT_NE(r.user, Generator::kBackupUser);
    ASSERT_NE(r.user, Generator::kCollectorUser);
  }
}

TEST(GeneratorTest, BackupActivityStillReachesCounters) {
  // Stripping is a TRACE operation: the kernel counters saw the backup
  // reads and collector writes (just like the paper's counters, which ran
  // around the clock).
  Generator with(QuickParams(), QuickCluster());
  with.Run(45 * kMinute);
  EXPECT_GT(with.records_stripped(), 0);
  const CacheCounters counters = with.cluster().AggregateCacheCounters();
  EXPECT_GT(counters.bytes_read_by_apps, 0);
}

TEST(GeneratorTest, GenerateEightProducesDistinctTraces) {
  WorkloadParams params = QuickParams();
  params.num_users = 4;
  ClusterConfig cluster = QuickCluster();
  const auto traces = Generator::GenerateEight(params, cluster, 10 * kMinute, 0);
  ASSERT_EQ(traces.size(), 8u);
  for (const TraceLog& t : traces) {
    EXPECT_FALSE(t.empty());
  }
  EXPECT_NE(traces[0], traces[1]);
}

}  // namespace
}  // namespace sprite
