#!/usr/bin/env python3
"""Perf trajectory for the end-to-end simulator scenarios.

Runs the BM_SimulateCluster benchmarks (and the BM_SimulateRebalance
hot-spot/rebalancing recipe) from bench/micro_perf and maintains one
committed BENCH_sim_<scenario>.json file per scenario at the repo root. Each file holds a `trajectory` list of labelled measurements
(events/sec, wall-clock ms per simulated hour, peak RSS), appended once per
PR, so speedups and regressions both leave a record.

Subcommands:
  measure --bin PATH [--min-time S]
      Run the scenarios and print the parsed measurements as JSON.
  record  --bin PATH --label TEXT [--min-time S]
      Run the scenarios and append one entry per scenario to the committed
      BENCH_*.json files (creating them if absent).
  check   --bin PATH [--min-time S] [--threshold 0.10]
      Run the scenarios and compare events/sec against the newest committed
      entry; exit non-zero on a regression beyond the threshold. Used by
      tools/check.sh as the perf gate.

The gate is on events/sec only: wall-clock per simulated hour is its
inverse (modulo the fixed sim window) and peak RSS legitimately drifts
with feature work, so both are recorded but not gated.
"""

import argparse
import datetime
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
# Benchmark-name prefix -> scenario-name prefix. BM_SimulateCluster/26/4 is
# scenario "26x4"; BM_SimulateRebalance/4/2 (the rebalance ablation recipe:
# heavy + async + detector + rebalancer) is scenario "rebalance_4x2".
BENCH_PREFIXES = {
    "BM_SimulateCluster/": "",
    "BM_SimulateRebalance/": "rebalance_",
}


def run_benchmarks(binary, min_time):
    cmd = [
        binary,
        "--benchmark_filter=^BM_Simulate(Cluster|Rebalance)/",
        "--benchmark_format=json",
        "--benchmark_min_time=%g" % min_time,
    ]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, check=True)
    doc = json.loads(proc.stdout)
    measurements = {}
    for bench in doc.get("benchmarks", []):
        name = bench["name"]
        prefix = next((p for p in BENCH_PREFIXES if name.startswith(p)), None)
        if prefix is None:
            continue
        clients, servers = name[len(prefix):].split("/")[:2]
        scenario = "%s%sx%s" % (BENCH_PREFIXES[prefix], clients, servers)
        # Unit(kMillisecond): real_time is ms per iteration.
        real_ms = float(bench["real_time"])
        sim_hours = float(bench["sim_hours"])
        measurements[scenario] = {
            "benchmark": name,
            "iterations": int(bench["iterations"]),
            "events_per_sec": float(bench["events_per_sec"]),
            "wall_ms_per_sim_hour": real_ms / sim_hours,
            "peak_rss_mb": float(bench["peak_rss_mb"]),
            "real_time_ms": real_ms,
        }
    if not measurements:
        raise SystemExit("bench_trajectory: no BM_SimulateCluster results "
                         "in benchmark output")
    return measurements


def bench_path(scenario):
    return os.path.join(REPO_ROOT, "BENCH_sim_%s.json" % scenario)


def load_trajectory(scenario):
    path = bench_path(scenario)
    if not os.path.exists(path):
        return {"scenario": scenario, "trajectory": []}
    with open(path) as f:
        return json.load(f)


def cmd_measure(args):
    measurements = run_benchmarks(args.bin, args.min_time)
    json.dump(measurements, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


def cmd_record(args):
    measurements = run_benchmarks(args.bin, args.min_time)
    for scenario, m in sorted(measurements.items()):
        doc = load_trajectory(scenario)
        entry = {"label": args.label,
                 "date": datetime.date.today().isoformat()}
        entry.update(m)
        doc["trajectory"].append(entry)
        with open(bench_path(scenario), "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print("recorded %s: %.0f events/sec (%s)"
              % (scenario, m["events_per_sec"], args.label))
    return 0


def cmd_check(args):
    measurements = run_benchmarks(args.bin, args.min_time)
    failures = []
    for scenario, m in sorted(measurements.items()):
        doc = load_trajectory(scenario)
        if not doc["trajectory"]:
            print("check %s: no committed trajectory yet, skipping" % scenario)
            continue
        committed = doc["trajectory"][-1]
        base = committed["events_per_sec"]
        now = m["events_per_sec"]
        ratio = now / base if base > 0 else float("inf")
        verdict = "OK" if ratio >= 1.0 - args.threshold else "REGRESSION"
        print("check %s: %.0f events/sec vs committed %.0f (%s) -> %+.1f%% [%s]"
              % (scenario, now, base, committed.get("label", "?"),
                 (ratio - 1.0) * 100.0, verdict))
        if verdict != "OK":
            failures.append(scenario)
    if failures:
        print("bench_trajectory: regression beyond %.0f%% on: %s"
              % (args.threshold * 100.0, ", ".join(failures)), file=sys.stderr)
        return 1
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    for name, fn in (("measure", cmd_measure), ("record", cmd_record),
                     ("check", cmd_check)):
        p = sub.add_parser(name)
        p.add_argument("--bin", required=True,
                       help="path to the micro_perf binary (Release build)")
        p.add_argument("--min-time", type=float, default=1.0,
                       help="--benchmark_min_time seconds (fixed in CI)")
        if name == "record":
            p.add_argument("--label", required=True,
                           help="trajectory entry label, e.g. 'PR 6 post-refactor'")
        if name == "check":
            p.add_argument("--threshold", type=float, default=0.10,
                           help="allowed fractional drop in events/sec")
        p.set_defaults(fn=fn)
    args = parser.parse_args()
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
