#!/bin/sh
# Runs the tier-1 verify (configure, build, ctest) twice: once plain and once
# with ASan+UBSan via the SPRITE_SANITIZE cache option. Each pass uses its own
# build directory so the instrumented objects never mix with the normal ones.
# Each pass also smoke-tests the observability exports: sprite_analyze
# --simulate --metrics --trace-out on a small cluster, checking that the
# Chrome trace JSON parses, that every wire-occupying RPC kind produced
# spans, and that the key metric names appear in the snapshot output.
# A second smoke drives a --crash-schedule (one server crash plus an
# asymmetric partition), asserting the recovery phases appear as spans, the
# recovery summary renders without leaking enum spellings, and an empty
# schedule leaves the paper tables byte-identical.
# A third smoke drives the event-driven transport (--async): server queue
# recorders must appear in --metrics, "rpc.queued" spans must parse out of
# the trace JSON, and the default sync mode must stay byte-identical to the
# committed baseline in tools/baselines/.
# A fourth smoke sweeps the sharding policies: each --shard-policy runs once
# with --shard-report, the report must name the policy and carry skew
# metrics, and the default modulo run must stay byte-identical to the
# committed golden baseline.
# A fifth smoke pins determinism directly: the standard 8u/4c/2s run's
# stdout hash and kernel dispatched-event count must match the committed
# values in tools/baselines/sim_hash_u8c4s2m10w2.txt — perf refactors of the
# event queue / RPC / cache layers must not move either.
# A sixth smoke covers observability v2: the windowed metrics / critical-path
# / hot-spot streams route to --metrics-out (never stdout), the critical-path
# table reconciles against the RPC ledger, the hot-spot detector flags the
# modulo-placement server in the heavy+async skew scenario and stays quiet
# under hash on the same seed, gauge counter tracks route to per-server pids
# in the Perfetto export, and a full-observability run leaves the paper
# tables byte-identical to the committed determinism baseline.
# A seventh smoke covers primary/backup replication: a --replication run
# under a crash schedule with a correlated crash group and a client crash
# must report fail-overs, a degraded crash, and preserved dirty bytes in the
# recovery summary, surface the failover instruments in --metrics and the
# shadow kinds in --rpc-ledger, emit "failover" and shadow spans in the
# trace, stay byte-identical across two identical faulted runs, and — with
# replication off — register no shadow or failover instruments at all.
# An eighth smoke covers the honest wire: a --honest-wire --rpc-batching
# --net-contention run must render the wire summary, the kBatch ledger row,
# per-link queue recorders in --metrics-out, and a critical-path table that
# reconciles exactly ("OK" lines, no MISMATCH); an honest-wire-only run must
# report piggybacked ops; two identical batched runs must be byte-identical;
# and with every wire flag off the paper tables must stay byte-identical to
# the committed sync baseline.
# A ninth smoke covers live rebalancing: a --rebalance run on the modulo
# hot-spot scenario must surface the rebalance.* gauges and kMigrate* ledger
# rows, render the rebalance report with a "hot spot dissolved" verdict,
# emit "migrate" spans on the rebalance track in the trace, and repeat
# byte-identically on the same seed; with --rebalance off the migration
# machinery must be invisible (no rebalance instrument, report, or migrate
# ledger row — determinism_smoke pins the off-mode hash). The sanitize pass
# additionally re-runs the randomized rebalance suites through ctest
# --repeat until-pass:1 as a determinism sweep.
# Finally (plain mode only) a perf gate builds a Release tree and runs the
# BM_SimulateCluster trajectory via tools/bench_trajectory.py check: a >10%
# events/sec regression against the newest committed BENCH_sim_*.json entry
# fails the build. Skipped gracefully when google-benchmark is not installed.
#
# Usage: tools/check.sh [--plain-only|--sanitize-only]
set -eu

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 4)"

metrics_smoke() {
  build_dir="$1"
  echo "== ${build_dir}: metrics smoke =="
  smoke_out="${build_dir}/metrics_smoke.txt"
  smoke_json="${build_dir}/metrics_smoke.json"
  # 10 users crowded onto 2 clients keeps memory under enough pressure that
  # even the rare paging RPCs (page-out = dirty VM eviction) occur.
  "${build_dir}/tools/sprite_analyze" --simulate --users 10 --clients 2 \
    --servers 2 --minutes 30 --warmup 5 --heavy --metrics \
    --metrics-interval 60 --trace-out "${smoke_json}" > "${smoke_out}"
  for needle in \
      "# sprite-metrics v2" \
      "window seq=0" \
      "gauge sim.queue.dispatched" \
      "counter cache.miss_fills" \
      "latency rpc.read-block.latency_us"; do
    if ! grep -qF "${needle}" "${smoke_out}"; then
      echo "metrics smoke: '${needle}' missing from ${smoke_out}" >&2
      exit 1
    fi
  done
  python3 - "${smoke_json}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "no trace events"
names = {e["name"] for e in events if e.get("ph") == "X"}
wire_kinds = ["open", "close", "read-block", "write-block", "uncached-read",
              "uncached-write", "page-in", "page-out", "read-dir"]
missing = [k for k in wire_kinds if k not in names]
assert not missing, f"wire RPC kinds without spans: {missing}"
counters = {e["name"] for e in events if e.get("ph") == "C"}
assert "rpc.calls" in counters, "metrics counter track missing"
print(f"metrics smoke: {len(events)} events, all {len(wire_kinds)} wire kinds spanned")
EOF
}

recovery_smoke() {
  build_dir="$1"
  echo "== ${build_dir}: recovery smoke =="
  rec_out="${build_dir}/recovery_smoke.txt"
  rec_json="${build_dir}/recovery_smoke.json"
  "${build_dir}/tools/sprite_analyze" --simulate --users 8 --clients 4 \
    --servers 2 --minutes 30 --warmup 5 --metrics --rpc-ledger \
    --crash-schedule "crash:0@600+20,part:0-1x0@900+300" \
    --trace-out "${rec_json}" > "${rec_out}"
  for needle in \
      "Crash recovery and partitions" \
      "server 0: epoch 2" \
      "reopen RPCs:" \
      "dropped callbacks:"; do
    if ! grep -qF "${needle}" "${rec_out}"; then
      echo "recovery smoke: '${needle}' missing from ${rec_out}" >&2
      exit 1
    fi
  done
  # Stale handles surface in the tables as lowercase prose, never as the
  # enum's literal spelling.
  if grep -q "StaleHandle" "${rec_out}"; then
    echo "recovery smoke: literal 'StaleHandle' leaked into table output" >&2
    exit 1
  fi
  python3 - "${rec_json}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
names = {e["name"] for e in events if e.get("ph") == "X"}
recovery_spans = ["recovery.crash", "server.down", "server.recovering",
                  "reopen", "partition-gap"]
missing = [n for n in recovery_spans if n not in names]
assert not missing, f"recovery spans missing from trace: {missing}"
print(f"recovery smoke: {len(events)} events, all recovery phases spanned")
EOF
  # With no crash schedule the recovery machinery must be invisible: the
  # paper tables are byte-identical with and without the flag machinery
  # compiled in (the --crash-schedule "" spell parses to an empty schedule).
  rec_base="${build_dir}/recovery_smoke_base.txt"
  rec_empty="${build_dir}/recovery_smoke_empty.txt"
  "${build_dir}/tools/sprite_analyze" --simulate --users 8 --clients 4 \
    --servers 2 --minutes 10 --warmup 2 > "${rec_base}"
  "${build_dir}/tools/sprite_analyze" --simulate --users 8 --clients 4 \
    --servers 2 --minutes 10 --warmup 2 --crash-schedule "" > "${rec_empty}"
  if ! cmp -s "${rec_base}" "${rec_empty}"; then
    echo "recovery smoke: empty crash schedule perturbed the paper tables" >&2
    diff "${rec_base}" "${rec_empty}" | head -20 >&2
    exit 1
  fi
  echo "recovery smoke: empty schedule is byte-identical"
}

async_smoke() {
  build_dir="$1"
  echo "== ${build_dir}: async transport smoke =="
  async_out="${build_dir}/async_smoke.txt"
  async_json="${build_dir}/async_smoke.json"
  "${build_dir}/tools/sprite_analyze" --simulate --users 8 --clients 4 \
    --servers 2 --minutes 10 --warmup 2 --async --metrics --rpc-ledger \
    --trace-out "${async_json}" > "${async_out}"
  for needle in \
      "latency server.0.queue_us" \
      "latency server.1.queue_us" \
      "gauge server.0.queue_depth" \
      "Queue (ms)" \
      "Service (ms)"; do
    if ! grep -qF "${needle}" "${async_out}"; then
      echo "async smoke: '${needle}' missing from ${async_out}" >&2
      exit 1
    fi
  done
  python3 - "${async_json}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
queued = [e for e in events if e.get("ph") == "X" and e["name"] == "rpc.queued"]
assert queued, "no rpc.queued spans in async trace"
assert all(e["dur"] > 0 for e in queued), "rpc.queued span with zero duration"
print(f"async smoke: {len(queued)} rpc.queued spans parsed")
EOF
  # Sync compat: with async off (the default) every table, ledger line, and
  # summary byte matches the committed baseline — the new transport machinery
  # must be invisible until opted into.
  sync_out="${build_dir}/async_smoke_sync.txt"
  "${build_dir}/tools/sprite_analyze" --simulate --users 8 --clients 4 \
    --servers 2 --minutes 10 --warmup 2 --rpc-ledger > "${sync_out}"
  if ! cmp -s tools/baselines/sync_tables_u8c4s2m10w2.txt "${sync_out}"; then
    echo "async smoke: sync-mode output diverged from the committed baseline" >&2
    diff tools/baselines/sync_tables_u8c4s2m10w2.txt "${sync_out}" | head -20 >&2
    exit 1
  fi
  echo "async smoke: sync mode matches the committed baseline"
}

sharding_smoke() {
  build_dir="$1"
  echo "== ${build_dir}: sharding smoke =="
  for policy in modulo hash range dir-affinity; do
    shard_out="${build_dir}/sharding_smoke_${policy}.txt"
    "${build_dir}/tools/sprite_analyze" --simulate --users 8 --clients 4 \
      --servers 2 --minutes 10 --warmup 2 \
      --shard-policy "${policy}" --shard-report > "${shard_out}"
    for needle in \
        "== Server sharding report ==" \
        "policy: ${policy}" \
        "Files placed" \
        "skew: files max/mean"; do
      if ! grep -qF "${needle}" "${shard_out}"; then
        echo "sharding smoke: '${needle}' missing from ${shard_out}" >&2
        exit 1
      fi
    done
  done
  # Golden baseline: the default modulo placement (and the report around it)
  # is pinned byte-for-byte — placement changes must be deliberate.
  if ! cmp -s tools/baselines/shard_report_modulo_u8c4s2m10w2.txt \
      "${build_dir}/sharding_smoke_modulo.txt"; then
    echo "sharding smoke: modulo report diverged from the committed baseline" >&2
    diff tools/baselines/shard_report_modulo_u8c4s2m10w2.txt \
      "${build_dir}/sharding_smoke_modulo.txt" | head -20 >&2
    exit 1
  fi
  echo "sharding smoke: all policies report, modulo matches the baseline"
}

determinism_smoke() {
  build_dir="$1"
  echo "== ${build_dir}: determinism hash =="
  det_out="${build_dir}/determinism_smoke.txt"
  det_err="${build_dir}/determinism_smoke.err"
  det_base="tools/baselines/sim_hash_u8c4s2m10w2.txt"
  "${build_dir}/tools/sprite_analyze" --simulate --users 8 --clients 4 \
    --servers 2 --minutes 10 --warmup 2 --rpc-ledger \
    > "${det_out}" 2> "${det_err}"
  hash="$(sha256sum "${det_out}" | cut -d' ' -f1)"
  expected_hash="$(grep '^sha256 ' "${det_base}" | cut -d' ' -f2)"
  if [ "${hash}" != "${expected_hash}" ]; then
    echo "determinism smoke: output hash ${hash} != committed ${expected_hash}" >&2
    exit 1
  fi
  dispatched="$(grep -o 'dispatched [0-9]* events' "${det_err}")"
  expected_dispatched="$(grep '^dispatched ' "${det_base}")"
  if [ "${dispatched}" != "${expected_dispatched}" ]; then
    echo "determinism smoke: '${dispatched}' != committed '${expected_dispatched}'" >&2
    exit 1
  fi
  echo "determinism smoke: hash and event count match (${dispatched})"
}

obs_v2_smoke() {
  build_dir="$1"
  echo "== ${build_dir}: observability v2 smoke =="
  # The sharding hot-spot scenario: heavy + async + modulo placement aims
  # every user's simulation input at server 0; the detector must flag it.
  hot_metrics="${build_dir}/obs_v2_hot.metrics"
  hot_out="${build_dir}/obs_v2_hot.txt"
  "${build_dir}/tools/sprite_analyze" --simulate --users 8 --clients 4 \
    --servers 2 --minutes 10 --warmup 2 --heavy --async \
    --metrics --critical-path --hotspot-report \
    --metrics-out "${hot_metrics}" > "${hot_out}" 2> /dev/null
  for needle in \
      "# sprite-metrics v2" \
      "window seq=0" \
      "win_p99_us=" \
      "== Critical path" \
      "reconcile rpcs:" \
      "== Hot-spot report ==" \
      "server 0: HOT"; do
    if ! grep -qF "${needle}" "${hot_metrics}"; then
      echo "obs v2 smoke: '${needle}' missing from ${hot_metrics}" >&2
      exit 1
    fi
  done
  if grep -q "MISMATCH" "${hot_metrics}"; then
    echo "obs v2 smoke: critical-path totals do not reconcile with the ledger" >&2
    grep "MISMATCH" "${hot_metrics}" >&2
    exit 1
  fi
  if grep -qE "sprite-metrics|reconcile|Hot-spot" "${hot_out}"; then
    echo "obs v2 smoke: metric streams leaked onto stdout despite --metrics-out" >&2
    exit 1
  fi
  # Same seed, hash placement: the skew dissolves and the detector is quiet.
  quiet_metrics="${build_dir}/obs_v2_quiet.metrics"
  "${build_dir}/tools/sprite_analyze" --simulate --users 8 --clients 4 \
    --servers 2 --minutes 10 --warmup 2 --heavy --async --shard-policy hash \
    --hotspot-report --metrics-out "${quiet_metrics}" > /dev/null 2> /dev/null
  if ! grep -qF "no hot spots detected" "${quiet_metrics}"; then
    echo "obs v2 smoke: detector fired under hash placement" >&2
    exit 1
  fi
  # Gauge/counter series render as per-server counter tracks in Perfetto.
  obs_json="${build_dir}/obs_v2_trace.json"
  "${build_dir}/tools/sprite_analyze" --simulate --users 8 --clients 4 \
    --servers 2 --minutes 10 --warmup 2 --async --metrics \
    --trace-out "${obs_json}" > /dev/null 2> /dev/null
  python3 - "${obs_json}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
tracks = {}
for e in doc["traceEvents"]:
    if e.get("ph") == "C":
        tracks.setdefault(e["name"], set()).add(e["pid"])
assert tracks.get("rpc.calls") == {9999}, "unprefixed counters must stay on the metrics track"
for s in (0, 1):
    name = f"server.{s}.queue_depth"
    assert tracks.get(name) == {1000 + s}, f"{name} not routed to the server {s} track"
print(f"obs v2 smoke: {len(tracks)} counter tracks, per-server routing OK")
EOF
  # Full observability routed through --metrics-out must leave the paper
  # tables byte-identical to the committed determinism baseline.
  det_full="${build_dir}/obs_v2_det.txt"
  "${build_dir}/tools/sprite_analyze" --simulate --users 8 --clients 4 \
    --servers 2 --minutes 10 --warmup 2 --rpc-ledger --metrics \
    --critical-path --hotspot-report \
    --metrics-out "${build_dir}/obs_v2_det.metrics" > "${det_full}" 2> /dev/null
  expected_hash="$(grep '^sha256 ' tools/baselines/sim_hash_u8c4s2m10w2.txt | cut -d' ' -f2)"
  hash="$(sha256sum "${det_full}" | cut -d' ' -f1)"
  if [ "${hash}" != "${expected_hash}" ]; then
    echo "obs v2 smoke: obs-on stdout hash ${hash} != committed ${expected_hash}" >&2
    exit 1
  fi
  echo "obs v2 smoke: verdicts, reconciliation, track routing, and baseline OK"
}

failover_smoke() {
  build_dir="$1"
  echo "== ${build_dir}: failover smoke =="
  fo_out="${build_dir}/failover_smoke.txt"
  fo_json="${build_dir}/failover_smoke.json"
  # One clean single-server crash (fails over), one client crash during the
  # run, and one correlated group that kills a primary together with its
  # backup (degrades to the classic reopen-storm path).
  fo_schedule="crash:0@240+30,ccrash:1@300,crash:0+1@420+20"
  "${build_dir}/tools/sprite_analyze" --simulate --users 8 --clients 4 \
    --servers 2 --minutes 10 --warmup 2 --replication --metrics --rpc-ledger \
    --crash-schedule "${fo_schedule}" --trace-out "${fo_json}" > "${fo_out}"
  for needle in \
      "latency recovery.failover_us" \
      "counter recovery.failovers" \
      "gauge server.0.role" \
      "shadow-open" \
      "replication: 1 failover(s)" \
      "1 degraded crash(es)" \
      "dirty preserved by fail-over" \
      "1 client crash(es)"; do
    if ! grep -qF "${needle}" "${fo_out}"; then
      echo "failover smoke: '${needle}' missing from ${fo_out}" >&2
      exit 1
    fi
  done
  python3 - "${fo_json}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
failovers = [e for e in events if e.get("ph") == "X" and e["name"] == "failover"]
assert failovers, "no failover spans in replicated trace"
assert all(e["dur"] > 0 for e in failovers), "failover span with zero duration"
shadow = [e for e in events if e.get("ph") == "X" and e["name"].startswith("shadow-")]
assert shadow, "no shadow RPC spans in replicated trace"
print(f"failover smoke: {len(failovers)} failover span(s), {len(shadow)} shadow spans")
EOF
  # Same seed, same schedule: a replicated faulted run must be reproducible
  # byte for byte, fail-over timing included.
  fo_rerun="${build_dir}/failover_smoke_rerun.txt"
  "${build_dir}/tools/sprite_analyze" --simulate --users 8 --clients 4 \
    --servers 2 --minutes 10 --warmup 2 --replication --metrics --rpc-ledger \
    --crash-schedule "${fo_schedule}" > "${fo_rerun}"
  if ! cmp -s "${fo_out}" "${fo_rerun}"; then
    echo "failover smoke: replicated faulted run is not deterministic" >&2
    diff "${fo_out}" "${fo_rerun}" | head -20 >&2
    exit 1
  fi
  # Replication off (the default): no shadow or failover instrument may
  # register — the metrics block and ledger must not mention them, keeping
  # the committed baselines byte-identical (determinism_smoke pins the hash).
  fo_off="${build_dir}/failover_smoke_off.txt"
  "${build_dir}/tools/sprite_analyze" --simulate --users 8 --clients 4 \
    --servers 2 --minutes 10 --warmup 2 --metrics --rpc-ledger > "${fo_off}"
  if grep -qE "shadow-|failover|server\.[0-9]+\.role" "${fo_off}"; then
    echo "failover smoke: replication machinery leaked into off-mode output" >&2
    grep -nE "shadow-|failover|server\.[0-9]+\.role" "${fo_off}" | head -5 >&2
    exit 1
  fi
  echo "failover smoke: fail-over, degraded path, determinism, and off-mode OK"
}

batching_smoke() {
  build_dir="$1"
  echo "== ${build_dir}: batching smoke =="
  bt_out="${build_dir}/batching_smoke.txt"
  bt_metrics="${build_dir}/batching_smoke_metrics.txt"
  "${build_dir}/tools/sprite_analyze" --simulate --users 8 --clients 4 \
    --servers 2 --minutes 10 --warmup 2 --honest-wire --rpc-batching \
    --net-contention --net-loss 0.02 --rpc-ledger --critical-path --metrics \
    --metrics-out "${bt_metrics}" > "${bt_out}"
  for needle in \
      "== Wire (honest wire / contention) ==" \
      "wire exchanges:" \
      "batched" \
      "contention:" \
      "retransmit(s)"; do
    if ! grep -qF "${needle}" "${bt_out}"; then
      echo "batching smoke: '${needle}' missing from ${bt_out}" >&2
      exit 1
    fi
  done
  # The coalesced exchanges land on their own ledger row.
  if ! grep -qE "^batch " "${bt_out}"; then
    echo "batching smoke: no kBatch row in the RPC ledger" >&2
    exit 1
  fi
  for needle in \
      "gauge wire.batched_ops" \
      "gauge wire.batches" \
      "gauge net.retransmits" \
      "latency net.link.0.queued_us" \
      "latency net.link.1.queued_us"; do
    if ! grep -qF "${needle}" "${bt_metrics}"; then
      echo "batching smoke: '${needle}' missing from ${bt_metrics}" >&2
      exit 1
    fi
  done
  # Batch flushes feed the critical path the same terms they charge to the
  # ledger, so the reconciliation must stay microsecond-exact.
  if grep -q "MISMATCH" "${bt_metrics}"; then
    echo "batching smoke: critical path does not reconcile under batching" >&2
    grep -n "MISMATCH" "${bt_metrics}" | head -5 >&2
    exit 1
  fi
  if ! grep -q "reconcile wire_us: .* OK" "${bt_metrics}"; then
    echo "batching smoke: critical-path wire reconciliation line missing" >&2
    exit 1
  fi
  # Honest wire without batching: the piggyback window must absorb some
  # control ops and charge the rest.
  bt_honest="${build_dir}/batching_smoke_honest.txt"
  "${build_dir}/tools/sprite_analyze" --simulate --users 8 --clients 4 \
    --servers 2 --minutes 10 --warmup 2 --honest-wire --rpc-ledger \
    > "${bt_honest}"
  if ! grep -qE "wire: [1-9][0-9]* piggybacked, [1-9][0-9]* charged control" \
      "${bt_honest}"; then
    echo "batching smoke: honest-wire run shows no piggybacked/charged ops" >&2
    exit 1
  fi
  # Same seed, same flags: the contended batched run must be reproducible
  # byte for byte, loss and queueing included.
  bt_rerun="${build_dir}/batching_smoke_rerun.txt"
  bt_rerun_metrics="${build_dir}/batching_smoke_rerun_metrics.txt"
  "${build_dir}/tools/sprite_analyze" --simulate --users 8 --clients 4 \
    --servers 2 --minutes 10 --warmup 2 --honest-wire --rpc-batching \
    --net-contention --net-loss 0.02 --rpc-ledger --critical-path --metrics \
    --metrics-out "${bt_rerun_metrics}" > "${bt_rerun}"
  if ! cmp -s "${bt_out}" "${bt_rerun}" || \
     ! cmp -s "${bt_metrics}" "${bt_rerun_metrics}"; then
    echo "batching smoke: contended batched run is not deterministic" >&2
    diff "${bt_out}" "${bt_rerun}" | head -20 >&2
    diff "${bt_metrics}" "${bt_rerun_metrics}" | head -20 >&2
    exit 1
  fi
  # All wire flags off: the paper tables must stay byte-identical to the
  # committed sync baseline — the honest-wire machinery may not perturb the
  # default path by a single byte.
  bt_off="${build_dir}/batching_smoke_off.txt"
  "${build_dir}/tools/sprite_analyze" --simulate --users 8 --clients 4 \
    --servers 2 --minutes 10 --warmup 2 --rpc-ledger > "${bt_off}"
  if ! cmp -s "${bt_off}" tools/baselines/sync_tables_u8c4s2m10w2.txt; then
    echo "batching smoke: off-mode output diverged from the committed baseline" >&2
    diff "${bt_off}" tools/baselines/sync_tables_u8c4s2m10w2.txt | head -20 >&2
    exit 1
  fi
  echo "batching smoke: wire summary, reconciliation, determinism, and off-mode OK"
}

rebalance_smoke() {
  build_dir="$1"
  echo "== ${build_dir}: rebalance smoke =="
  rb_out="${build_dir}/rebalance_smoke.txt"
  rb_metrics="${build_dir}/rebalance_smoke.metrics"
  rb_json="${build_dir}/rebalance_smoke.json"
  # The modulo hot-spot scenario with the rebalancer armed: the detector's
  # episode must trigger a migration burst and the burst must dissolve it.
  "${build_dir}/tools/sprite_analyze" --simulate --users 8 --clients 4 \
    --servers 2 --minutes 10 --warmup 2 --heavy --async --rebalance \
    --metrics --rpc-ledger --metrics-out "${rb_metrics}" \
    --trace-out "${rb_json}" > "${rb_out}" 2> /dev/null
  for needle in \
      "gauge rebalance.migrations" \
      "gauge rebalance.moved_bytes" \
      "== Rebalance report ==" \
      "hot-spot migrations:" \
      "hot spot dissolved" \
      "hot spots dissolved: 1/1 bursts" \
      "migration RPCs:"; do
    if ! grep -qF "${needle}" "${rb_metrics}"; then
      echo "rebalance smoke: '${needle}' missing from ${rb_metrics}" >&2
      exit 1
    fi
  done
  # The burst's wire traffic lands on the migrate ledger rows.
  if ! grep -qE "^migrate-state " "${rb_out}"; then
    echo "rebalance smoke: no migrate-state row in the RPC ledger" >&2
    exit 1
  fi
  python3 - "${rb_json}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
moves = [e for e in events if e.get("ph") == "X" and e["name"] == "migrate"]
assert moves, "no migrate spans in rebalanced trace"
assert all(e.get("cat") == "rebalance" for e in moves), "migrate span off the rebalance track"
assert all(e["dur"] > 0 for e in moves), "migrate span with zero duration"
print(f"rebalance smoke: {len(moves)} migrate span(s) on the rebalance track")
EOF
  # Same seed, same flags: migrations included, the run must reproduce byte
  # for byte on stdout and the metrics stream.
  rb_rerun="${build_dir}/rebalance_smoke_rerun.txt"
  rb_rerun_metrics="${build_dir}/rebalance_smoke_rerun.metrics"
  "${build_dir}/tools/sprite_analyze" --simulate --users 8 --clients 4 \
    --servers 2 --minutes 10 --warmup 2 --heavy --async --rebalance \
    --metrics --rpc-ledger --metrics-out "${rb_rerun_metrics}" \
    > "${rb_rerun}" 2> /dev/null
  if ! cmp -s "${rb_out}" "${rb_rerun}" || \
     ! cmp -s "${rb_metrics}" "${rb_rerun_metrics}"; then
    echo "rebalance smoke: rebalanced run is not deterministic" >&2
    diff "${rb_out}" "${rb_rerun}" | head -20 >&2
    diff "${rb_metrics}" "${rb_rerun_metrics}" | head -20 >&2
    exit 1
  fi
  # Off mode (the default): no rebalance instrument, report, or migrate
  # ledger row may appear anywhere — the committed baselines stay
  # byte-identical (determinism_smoke and obs_v2_smoke pin the hashes).
  rb_off="${build_dir}/rebalance_smoke_off.txt"
  rb_off_metrics="${build_dir}/rebalance_smoke_off.metrics"
  "${build_dir}/tools/sprite_analyze" --simulate --users 8 --clients 4 \
    --servers 2 --minutes 10 --warmup 2 --heavy --async \
    --metrics --rpc-ledger --metrics-out "${rb_off_metrics}" \
    > "${rb_off}" 2> /dev/null
  if grep -qE "rebalance\.|migrate-(state|dirty|commit)|Rebalance report" \
      "${rb_off}" "${rb_off_metrics}"; then
    echo "rebalance smoke: rebalance machinery leaked into off-mode output" >&2
    grep -nE "rebalance\.|migrate-(state|dirty|commit)|Rebalance report" \
      "${rb_off}" "${rb_off_metrics}" | head -5 >&2
    exit 1
  fi
  echo "rebalance smoke: burst, dissolution, spans, determinism, and off-mode OK"
}

randomized_sweep() {
  build_dir="$1"
  echo "== ${build_dir}: randomized-test determinism sweep =="
  # Re-runs the seeded randomized suites (property churn sequences and the
  # same-seed cluster runs) as their own stage under the sanitizers; any
  # nondeterminism or sanitizer report fails the pass.
  ctest --test-dir "${build_dir}" --output-on-failure --repeat until-pass:1 \
    -R "RebalanceSequenceProperty|SameSeedRebalancedRuns|Deterministic"
}

perf_gate() {
  build_dir="build-release"
  echo "== ${build_dir}: perf gate =="
  cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "${build_dir}" -j "${jobs}"
  if [ ! -x "${build_dir}/bench/micro_perf" ]; then
    echo "perf gate: google-benchmark not installed; skipping"
    return 0
  fi
  python3 tools/bench_trajectory.py check --bin "${build_dir}/bench/micro_perf" \
    --min-time 0.5 --threshold 0.10
}

run_pass() {
  build_dir="$1"
  shift
  echo "== ${build_dir}: cmake $* =="
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "${jobs}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
  metrics_smoke "${build_dir}"
  recovery_smoke "${build_dir}"
  async_smoke "${build_dir}"
  sharding_smoke "${build_dir}"
  determinism_smoke "${build_dir}"
  obs_v2_smoke "${build_dir}"
  failover_smoke "${build_dir}"
  batching_smoke "${build_dir}"
  rebalance_smoke "${build_dir}"
  case "${build_dir}" in
    *sanitize*) randomized_sweep "${build_dir}" ;;
  esac
}

mode="${1:-all}"
case "${mode}" in
  all|--plain-only|--sanitize-only) ;;
  *)
    echo "usage: tools/check.sh [--plain-only|--sanitize-only]" >&2
    exit 2
    ;;
esac

if [ "${mode}" != "--sanitize-only" ]; then
  run_pass build
  perf_gate
fi
if [ "${mode}" != "--plain-only" ]; then
  run_pass build-sanitize "-DSPRITE_SANITIZE=address;undefined"
fi

echo "check.sh: all requested passes OK"
