#!/bin/sh
# Runs the tier-1 verify (configure, build, ctest) twice: once plain and once
# with ASan+UBSan via the SPRITE_SANITIZE cache option. Each pass uses its own
# build directory so the instrumented objects never mix with the normal ones.
#
# Usage: tools/check.sh [--plain-only|--sanitize-only]
set -eu

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 4)"

run_pass() {
  build_dir="$1"
  shift
  echo "== ${build_dir}: cmake $* =="
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "${jobs}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
}

mode="${1:-all}"
case "${mode}" in
  all|--plain-only|--sanitize-only) ;;
  *)
    echo "usage: tools/check.sh [--plain-only|--sanitize-only]" >&2
    exit 2
    ;;
esac

if [ "${mode}" != "--sanitize-only" ]; then
  run_pass build
fi
if [ "${mode}" != "--plain-only" ]; then
  run_pass build-sanitize "-DSPRITE_SANITIZE=address;undefined"
fi

echo "check.sh: all requested passes OK"
