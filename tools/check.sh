#!/bin/sh
# Runs the tier-1 verify (configure, build, ctest) twice: once plain and once
# with ASan+UBSan via the SPRITE_SANITIZE cache option. Each pass uses its own
# build directory so the instrumented objects never mix with the normal ones.
# Each pass also smoke-tests the observability exports: sprite_analyze
# --simulate --metrics --trace-out on a small cluster, checking that the
# Chrome trace JSON parses, that every wire-occupying RPC kind produced
# spans, and that the key metric names appear in the snapshot output.
#
# Usage: tools/check.sh [--plain-only|--sanitize-only]
set -eu

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 4)"

metrics_smoke() {
  build_dir="$1"
  echo "== ${build_dir}: metrics smoke =="
  smoke_out="${build_dir}/metrics_smoke.txt"
  smoke_json="${build_dir}/metrics_smoke.json"
  # 10 users crowded onto 2 clients keeps memory under enough pressure that
  # even the rare paging RPCs (page-out = dirty VM eviction) occur.
  "${build_dir}/tools/sprite_analyze" --simulate --users 10 --clients 2 \
    --servers 2 --minutes 30 --warmup 5 --heavy --metrics \
    --metrics-interval 60 --trace-out "${smoke_json}" > "${smoke_out}"
  for needle in \
      "# sprite-metrics v1" \
      "gauge sim.queue.dispatched" \
      "counter cache.miss_fills" \
      "latency rpc.read-block.latency_us"; do
    if ! grep -qF "${needle}" "${smoke_out}"; then
      echo "metrics smoke: '${needle}' missing from ${smoke_out}" >&2
      exit 1
    fi
  done
  python3 - "${smoke_json}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "no trace events"
names = {e["name"] for e in events if e.get("ph") == "X"}
wire_kinds = ["open", "close", "read-block", "write-block", "uncached-read",
              "uncached-write", "page-in", "page-out", "read-dir"]
missing = [k for k in wire_kinds if k not in names]
assert not missing, f"wire RPC kinds without spans: {missing}"
counters = {e["name"] for e in events if e.get("ph") == "C"}
assert "rpc.calls" in counters, "metrics counter track missing"
print(f"metrics smoke: {len(events)} events, all {len(wire_kinds)} wire kinds spanned")
EOF
}

run_pass() {
  build_dir="$1"
  shift
  echo "== ${build_dir}: cmake $* =="
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "${jobs}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
  metrics_smoke "${build_dir}"
}

mode="${1:-all}"
case "${mode}" in
  all|--plain-only|--sanitize-only) ;;
  *)
    echo "usage: tools/check.sh [--plain-only|--sanitize-only]" >&2
    exit 2
    ;;
esac

if [ "${mode}" != "--sanitize-only" ]; then
  run_pass build
fi
if [ "${mode}" != "--plain-only" ]; then
  run_pass build-sanitize "-DSPRITE_SANITIZE=address;undefined"
fi

echo "check.sh: all requested passes OK"
