// sprite-analyze: run the paper's Section-4 analyses over a trace file.
//
// Usage:
//   sprite_analyze [--text] [--interval SECONDS] [--rpc-ledger] <trace-file>
//
// Reads a trace written by sprite_tracegen (binary by default, --text for
// the text format) and prints the BSD-study-revisited report: summary,
// activity, access patterns, run lengths, sizes, open times, lifetimes, and
// the consistency simulations. With --rpc-ledger it also replays the trace
// through the RPC transport model and prints the per-kind ledger table.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "src/analysis/accesses.h"
#include "src/analysis/activity.h"
#include "src/analysis/lifetimes.h"
#include "src/analysis/patterns.h"
#include "src/consistency/overhead.h"
#include "src/consistency/polling.h"
#include "src/fs/rpc.h"
#include "src/trace/codec.h"
#include "src/trace/summary.h"
#include "src/trace/text_format.h"
#include "src/util/table.h"

using namespace sprite;

int main(int argc, char** argv) {
  bool text = false;
  bool rpc_ledger = false;
  SimDuration interval = 10 * kMinute;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--text") {
      text = true;
    } else if (arg == "--rpc-ledger") {
      rpc_ledger = true;
    } else if (arg == "--interval" && i + 1 < argc) {
      interval = static_cast<SimDuration>(std::atoi(argv[++i])) * kSecond;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: sprite_analyze [--text] [--interval SECONDS] [--rpc-ledger] TRACE\n");
      return 0;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: sprite_analyze [--text] [--interval SECONDS] [--rpc-ledger] TRACE\n");
    return 2;
  }

  TraceLog trace;
  try {
    if (text) {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
      }
      trace = ParseText(in);
    } else {
      trace = ReadTraceFile(path);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to read %s: %s\n", path.c_str(), e.what());
    return 1;
  }

  const TraceSummary s = Summarize(trace);
  std::printf("== Summary (Table 1 style) ==\n");
  std::printf("records %lld | %.2f hours | %lld users (%lld using migration)\n",
              static_cast<long long>(s.total_records), s.duration_hours(),
              static_cast<long long>(s.distinct_users),
              static_cast<long long>(s.migration_users));
  std::printf("read %.1f MB | written %.1f MB | dirs %.2f MB\n", s.mbytes_read(),
              s.mbytes_written(), s.mbytes_dir_read());
  std::printf("opens %lld | closes %lld | seeks %lld | deletes %lld | truncates %lld | "
              "shared r/w %lld/%lld\n\n",
              static_cast<long long>(s.open_events), static_cast<long long>(s.close_events),
              static_cast<long long>(s.seek_events), static_cast<long long>(s.delete_events),
              static_cast<long long>(s.truncate_events),
              static_cast<long long>(s.shared_read_events),
              static_cast<long long>(s.shared_write_events));

  const ActivityReport activity = ComputeActivity(trace, interval);
  std::printf("== Activity (Table 2 style, %.0f-second intervals) ==\n", ToSeconds(interval));
  std::printf("active users: %.1f avg (max %.0f) | throughput/user %.1f KB/s | peak user "
              "%.0f KB/s | peak total %.0f KB/s\n\n",
              activity.all_users.active_users.mean(), activity.all_users.active_users.max(),
              activity.all_users.throughput_per_user.mean() / 1024.0,
              activity.all_users.peak_user_throughput / 1024.0,
              activity.all_users.peak_total_throughput / 1024.0);

  const auto accesses = ExtractAccesses(trace);
  const AccessPatternStats patterns = ComputeAccessPatterns(accesses);
  std::printf("== Access patterns (Table 3 style) ==\n");
  std::printf("read-only %.1f%% | write-only %.1f%% | read-write %.1f%% of %lld accesses\n",
              patterns.read_only.accesses_fraction * 100,
              patterns.write_only.accesses_fraction * 100,
              patterns.read_write.accesses_fraction * 100,
              static_cast<long long>(patterns.total_accesses));
  std::printf("read-only sequentiality: %.0f%% whole-file, %.0f%% other-seq, %.1f%% random\n\n",
              patterns.read_only.whole_file * 100, patterns.read_only.other_sequential * 100,
              patterns.read_only.random * 100);

  const RunLengthCurves runs = ComputeRunLengths(accesses);
  const FileSizeCurves sizes = ComputeFileSizes(accesses);
  const WeightedSamples opens = ComputeOpenDurations(accesses);
  const LifetimeCurves lifetimes = ComputeLifetimes(trace);
  std::printf("== Distributions (Figures 1-4 style) ==\n");
  std::printf("runs: %.0f%% < 10 KB; %.0f%% of bytes in runs > 1 MB\n",
              runs.by_runs.FractionAtOrBelow(10 * kKilobyte) * 100,
              (1 - runs.by_bytes.FractionAtOrBelow(kMegabyte)) * 100);
  std::printf("sizes: %.0f%% of accesses < 1 KB; %.0f%% of bytes from files >= 1 MB\n",
              sizes.by_accesses.FractionAtOrBelow(kKilobyte) * 100,
              (1 - sizes.by_bytes.FractionAtOrBelow(kMegabyte)) * 100);
  std::printf("opens: %.0f%% < 0.25 s (median %.0f ms)\n",
              opens.FractionAtOrBelow(0.25) * 100, opens.Quantile(0.5) * 1000);
  std::printf("lifetimes: %.0f%% of files and %.0f%% of bytes dead within 30 s (%lld deaths)\n\n",
              lifetimes.by_files.FractionAtOrBelow(30) * 100,
              lifetimes.by_bytes.FractionAtOrBelow(30) * 100,
              static_cast<long long>(lifetimes.deaths_observed));

  std::printf("== Consistency simulations (Tables 11-12 style) ==\n");
  for (const SimDuration refresh : {60 * kSecond, 3 * kSecond}) {
    const PollingResult p = SimulatePolling(trace, refresh);
    std::printf("polling %2.0f s: %.1f stale reads/hour, %.0f%% users affected\n",
                ToSeconds(refresh), p.errors_per_hour(), p.affected_user_fraction() * 100);
  }
  for (const auto& [name, policy] :
       std::initializer_list<std::pair<const char*, ConsistencyPolicy>>{
           {"sprite", ConsistencyPolicy::kSprite},
           {"modified", ConsistencyPolicy::kSpriteModified},
           {"token", ConsistencyPolicy::kToken}}) {
    const OverheadResult o = SimulateConsistencyOverhead(trace, policy);
    std::printf("%-9s bytes ratio %.2f, RPC ratio %.2f over %lld shared events\n", name,
                o.byte_ratio(), o.rpc_ratio(), static_cast<long long>(o.events_requested));
  }

  if (rpc_ledger) {
    std::printf("\n== RPC transport ledger (replayed; reads are a no-cache upper bound) ==\n");
    std::printf("%s", FormatRpcLedger(ReplayTraceLedger(trace)).c_str());
  }
  return 0;
}
