// sprite-analyze: run the paper's Section-4 analyses over a trace file.
//
// Usage:
//   sprite_analyze [options] <trace-file>
//   sprite_analyze --simulate [options]
//
// Reads a trace written by sprite_tracegen (binary by default, --text for
// the text format) and prints the BSD-study-revisited report: summary,
// activity, access patterns, run lengths, sizes, open times, lifetimes, and
// the consistency simulations. With --rpc-ledger it also replays the trace
// through the RPC transport model and prints the per-kind ledger table.
//
// Observability options:
//   --metrics              collect and print metrics. Live --simulate runs
//                          print the windowed time series (sprite-metrics v2:
//                          per-window deltas, rates, and windowed latency
//                          percentiles; DESIGN.md "Observability v2"); trace
//                          replay falls back to the v1 snapshot history. Both
//                          modes append per-RPC-kind p50/p90/p99 latency
//                          percentiles.
//   --metrics-interval N   registry snapshot period in seconds (default 60;
//                          implies --metrics)
//   --metrics-out FILE     write the metric streams (--metrics windows,
//                          --critical-path, --hotspot-report) to FILE instead
//                          of interleaving them with the paper tables on
//                          stdout; --metrics-out=FILE also accepted
//   --critical-path        collect per-operation critical-path frames and
//                          print the "where the time goes" table attributing
//                          end-to-end op latency to RPC wait / wire / queue /
//                          service / disk phases, cross-checked against the
//                          RPC ledger (requires --simulate)
//   --hotspot-report       run the windowed hot-spot detector over the
//                          per-server series and print flagged episodes
//                          (implies --metrics; requires --simulate)
//   --rebalance            enable live shard rebalancing (DESIGN.md §11):
//                          hot-spot episodes trigger charged home migrations
//                          off the flagged server mid-run. Implies --metrics
//                          and the hot-spot detector; prints the rebalance
//                          report (migration bursts, moved bytes, whether
//                          each hot spot dissolved) and the kMigrate* RPC
//                          totals (requires --simulate)
//   --trace-out FILE       write spans as Chrome trace-event JSON, loadable
//                          in Perfetto (ui.perfetto.dev); --trace-out=FILE
//                          also accepted. Gauges/counters export as per-track
//                          counter series alongside the spans.
//
// With a trace-file input the observability data is reconstructed by the
// ledger replay, which can only see trace-visible RPC kinds (paging never
// appears in kernel-call traces). --simulate instead runs a live cluster
// under the synthetic workload (same knobs as sprite_tracegen: --users,
// --clients, --servers, --minutes, --warmup, --seed, --heavy), where every
// RPC kind crosses the instrumented transport, then analyzes the trace that
// run produced.
//
// Event-driven transport (requires --simulate):
//   --async                run the cluster with RpcConfig::async: RPC
//                          completion moves onto the event queue and each
//                          server serializes requests through a FIFO
//                          service queue, so concurrent RPCs overlap and a
//                          loaded server accumulates queueing delay
//                          (server.N.queue_us / server.N.queue_depth in
//                          --metrics; Queue/Service columns in
//                          --rpc-ledger; "rpc.queued" spans in --trace-out)
//
// Honest wire and contended network (requires --simulate):
//   --honest-wire          ledger-only control RPCs (getattr, create/delete/
//                          truncate, consistency callbacks) stop being free:
//                          one issued within the piggyback window of the last
//                          exchange on its (client, server) pair rides it for
//                          free, otherwise it pays a full control exchange
//                          ("wire:" footer in --rpc-ledger)
//   --rpc-batching         defer small control RPCs — and the --replication
//                          shadow stream — into per-(client, server) batches
//                          that flush as single "batch" wire exchanges
//                          (implies the honest-wire cost model for them)
//   --net-contention       per-link + shared-medium queueing on the wire:
//                          overlapping transfers wait, measurable as
//                          net.link.N.queued_us in --metrics and
//                          "net.queued" spans in --trace-out
//   --net-loss RATE        deterministic per-transfer loss probability on the
//                          contended wire (implies --net-contention); each
//                          loss pays a retransmit timeout plus a resend
//
// Server sharding (requires --simulate):
//   --shard-policy NAME    file -> server placement policy: modulo (the
//                          default, the historical `file % servers`
//                          partition), hash (splitmix64 decluster), range
//                          (contiguous FileId ranges), dir-affinity (a file
//                          follows its parent directory, so a user's
//                          directory/mailbox/files co-locate)
//   --shard-report         print the per-server placement/load table after
//                          the standard tables: distinct files placed,
//                          routed lookups, homed bytes, RPC calls, queue
//                          percentiles (async + metrics runs), and skew
//                          summaries (max/mean, coefficient of variation)
//
// Fault injection (requires --simulate):
//   --crash-schedule SPEC  comma-separated deterministic fault events:
//                            crash:<server>[+<server>...]@<at_sec>+<down_sec>
//                            part:<first>-<last>x<server>@<at_sec>+<dur_sec>
//                            ccrash:<client>@<at_sec>
//                          Times are seconds from the start of the run
//                          (warmup included). Server crashes lose volatile
//                          open state and trigger client reopen storms; a
//                          '+'-joined server group crashes together
//                          (correlated failure); partitions drop consistency
//                          callbacks to the named clients (silent cache
//                          staleness); ccrash crash-reboots one client
//                          (cold caches, dropped handles). A recovery
//                          summary section is printed after the standard
//                          tables.
//   --replication          primary/backup server replication: each home's
//                          primary shadows open registrations and dirty
//                          writebacks to a deterministic backup (real,
//                          ledgered shadow-* RPC traffic), and a crash with
//                          a live shadow FAILS OVER — the backup is promoted
//                          and replays the shadow delta instead of the
//                          epoch-bump reopen storm. Correlated crashes that
//                          kill every replica degrade to classic recovery.
//                          Fail-over counts and latency appear in the
//                          recovery summary (and recovery.failover_us under
//                          --metrics).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "src/analysis/accesses.h"
#include "src/analysis/activity.h"
#include "src/fs/recovery.h"
#include "src/analysis/lifetimes.h"
#include "src/analysis/patterns.h"
#include "src/consistency/overhead.h"
#include "src/consistency/polling.h"
#include "src/fs/rpc.h"
#include "src/fs/sharding.h"
#include "src/obs/observability.h"
#include "src/trace/codec.h"
#include "src/trace/summary.h"
#include "src/trace/text_format.h"
#include "src/util/table.h"
#include "src/workload/generator.h"

using namespace sprite;

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: sprite_analyze [--text] [--interval SECONDS] [--rpc-ledger]\n"
      "                      [--metrics] [--metrics-interval SECONDS]\n"
      "                      [--metrics-out FILE] [--trace-out FILE] TRACE\n"
      "       sprite_analyze --simulate [--users N] [--clients N] [--servers N]\n"
      "                      [--minutes N] [--warmup N] [--seed N] [--heavy]\n"
      "                      [--async] [--crash-schedule SPEC] [--replication]\n"
      "                      [--honest-wire] [--rpc-batching]\n"
      "                      [--net-contention] [--net-loss RATE]\n"
      "                      [--shard-policy modulo|hash|range|dir-affinity]\n"
      "                      [--shard-report] [--critical-path] [--hotspot-report]\n"
      "                      [--rebalance] [observability options as above]\n");
}

void PrintMetrics(const Observability& obs, SimTime now, FILE* sink) {
  const MetricsRegistry& metrics = obs.metrics();
  const MetricsTimeSeries& series = obs.series();
  if (series.size() > 0) {
    // Live cluster: windowed time series (deltas/rates plus windowed latency
    // percentiles). The final window carries final_partial=1 when the run
    // length was not a multiple of the snapshot interval.
    std::fprintf(sink,
                 "\n== Metrics (sprite-metrics v2, windowed; see DESIGN.md "
                 "\"Observability v2\") ==\n");
    if (series.windows_evicted() > 0) {
      std::fprintf(sink, "# %lld oldest windows evicted (ring capacity %zu)\n",
                   static_cast<long long>(series.windows_evicted()), series.capacity());
    }
    for (size_t i = 0; i < series.size(); ++i) {
      std::fprintf(sink, "%s", FormatMetricsWindow(series.window(i)).c_str());
    }
  } else {
    // Trace replay reconstructs plain snapshots only; keep the v1 stream.
    std::fprintf(sink, "\n== Metrics (sprite-metrics v1; see DESIGN.md \"Observability\") ==\n");
    for (const MetricsSnapshot& snapshot : metrics.history()) {
      std::fprintf(sink, "%s", FormatMetricsSnapshot(snapshot).c_str());
    }
    // Final snapshot at end of run, regardless of the periodic history.
    std::fprintf(sink, "%s", FormatMetricsSnapshot(metrics.Snapshot(now)).c_str());
  }
  std::fprintf(sink, "\n== RPC latency percentiles (from recorded spans) ==\n%s",
               FormatRpcLatencySummary(metrics).c_str());
}

bool WriteTraceJson(const Observability& obs, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  obs.tracer().WriteChromeTrace(out, obs.metrics_enabled() ? &obs.metrics() : nullptr);
  std::fprintf(stderr, "wrote %zu spans to %s\n", obs.tracer().spans().size(), path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool text = false;
  bool rpc_ledger = false;
  bool metrics = false;
  bool simulate = false;
  bool async_rpc = false;
  bool replication = false;
  bool honest_wire = false;
  bool rpc_batching = false;
  bool net_contention = false;
  double net_loss = 0.0;
  bool heavy = false;
  bool shard_report = false;
  bool critical_path = false;
  bool hotspot_report = false;
  bool rebalance = false;
  ShardingPolicy shard_policy = ShardingPolicy::kModulo;
  SimDuration interval = 10 * kMinute;
  SimDuration metrics_interval = kMinute;
  std::string trace_out;
  std::string metrics_out;
  std::string crash_schedule_spec;
  std::string path;
  int users = 20;
  int clients = -1;
  int servers = 4;
  int minutes = 90;
  int warmup = 30;
  uint64_t seed = 1991;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_int = [&](int& out) {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      out = std::atoi(argv[++i]);
    };
    if (arg == "--text") {
      text = true;
    } else if (arg == "--rpc-ledger") {
      rpc_ledger = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--simulate") {
      simulate = true;
    } else if (arg == "--async") {
      async_rpc = true;
    } else if (arg == "--replication") {
      replication = true;
    } else if (arg == "--honest-wire") {
      honest_wire = true;
    } else if (arg == "--rpc-batching") {
      rpc_batching = true;
    } else if (arg == "--net-contention") {
      net_contention = true;
    } else if ((arg == "--net-loss" && i + 1 < argc) || arg.rfind("--net-loss=", 0) == 0) {
      const std::string rate = arg == "--net-loss"
                                   ? std::string(argv[++i])
                                   : arg.substr(std::strlen("--net-loss="));
      net_loss = std::atof(rate.c_str());
      if (net_loss < 0.0 || net_loss >= 1.0) {
        std::fprintf(stderr, "--net-loss wants a rate in [0, 1), got %s\n", rate.c_str());
        return 2;
      }
      net_contention = true;
    } else if (arg == "--heavy") {
      heavy = true;
    } else if (arg == "--interval" && i + 1 < argc) {
      interval = static_cast<SimDuration>(std::atoi(argv[++i])) * kSecond;
    } else if (arg == "--metrics-interval" && i + 1 < argc) {
      metrics = true;
      metrics_interval = static_cast<SimDuration>(std::atoi(argv[++i])) * kSecond;
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::strlen("--trace-out="));
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::strlen("--metrics-out="));
    } else if (arg == "--critical-path") {
      critical_path = true;
    } else if (arg == "--hotspot-report") {
      hotspot_report = true;
    } else if (arg == "--rebalance") {
      rebalance = true;
    } else if (arg == "--shard-report") {
      shard_report = true;
    } else if ((arg == "--shard-policy" && i + 1 < argc) || arg.rfind("--shard-policy=", 0) == 0) {
      const std::string name = arg == "--shard-policy"
                                   ? std::string(argv[++i])
                                   : arg.substr(std::strlen("--shard-policy="));
      if (!ParseShardingPolicy(name, &shard_policy)) {
        std::fprintf(stderr, "unknown --shard-policy %s (want modulo|hash|range|dir-affinity)\n",
                     name.c_str());
        return 2;
      }
    } else if (arg == "--crash-schedule" && i + 1 < argc) {
      crash_schedule_spec = argv[++i];
    } else if (arg.rfind("--crash-schedule=", 0) == 0) {
      crash_schedule_spec = arg.substr(std::strlen("--crash-schedule="));
    } else if (arg == "--users") {
      next_int(users);
    } else if (arg == "--clients") {
      next_int(clients);
    } else if (arg == "--servers") {
      next_int(servers);
    } else if (arg == "--minutes") {
      next_int(minutes);
    } else if (arg == "--warmup") {
      next_int(warmup);
    } else if (arg == "--seed") {
      int s = 0;
      next_int(s);
      seed = static_cast<uint64_t>(s);
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      Usage();
      return 2;
    } else {
      path = arg;
    }
  }
  if ((!simulate && path.empty()) || (simulate && !path.empty())) {
    Usage();
    return 2;
  }
  if (!crash_schedule_spec.empty() && !simulate) {
    std::fprintf(stderr, "--crash-schedule requires --simulate\n");
    Usage();
    return 2;
  }
  if (async_rpc && !simulate) {
    std::fprintf(stderr, "--async requires --simulate\n");
    Usage();
    return 2;
  }
  if (replication && !simulate) {
    std::fprintf(stderr, "--replication requires --simulate\n");
    Usage();
    return 2;
  }
  if ((honest_wire || rpc_batching || net_contention) && !simulate) {
    std::fprintf(stderr, "--honest-wire/--rpc-batching/--net-contention require --simulate\n");
    Usage();
    return 2;
  }
  if ((shard_report || shard_policy != ShardingPolicy::kModulo) && !simulate) {
    std::fprintf(stderr, "--shard-policy / --shard-report require --simulate\n");
    Usage();
    return 2;
  }
  if ((critical_path || hotspot_report) && !simulate) {
    std::fprintf(stderr, "--critical-path / --hotspot-report require --simulate\n");
    Usage();
    return 2;
  }
  if (rebalance && !simulate) {
    std::fprintf(stderr, "--rebalance requires --simulate\n");
    Usage();
    return 2;
  }
  FaultSchedule fault_schedule;
  if (!crash_schedule_spec.empty()) {
    try {
      fault_schedule = ParseFaultSchedule(crash_schedule_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad --crash-schedule: %s\n", e.what());
      return 2;
    }
  }

  ObservabilityConfig obs_config;
  // The detector consumes the windowed series, so --hotspot-report turns the
  // registry on even without --metrics (windows print only with --metrics).
  // --rebalance needs the whole chain — windows feed the detector, whose
  // episodes drive the migrations — so it forces both on too.
  obs_config.metrics = metrics || hotspot_report || rebalance;
  obs_config.tracing = !trace_out.empty();
  obs_config.snapshot_interval = metrics_interval;
  obs_config.critical_path = critical_path;
  obs_config.hotspot = hotspot_report || rebalance;

  TraceLog trace;
  // Live-cluster mode: the cluster owns the Observability; replay mode
  // builds a local one fed by the ledger reconstruction.
  std::unique_ptr<Generator> generator;
  std::unique_ptr<Observability> replay_obs;
  const Observability* obs = nullptr;
  SimTime end_time = 0;

  if (simulate) {
    if (users <= 0 || servers <= 0 || minutes <= 0 || warmup < 0) {
      Usage();
      return 2;
    }
    if (clients < 0) {
      clients = users + 6;
    }
    WorkloadParams params;
    params.num_users = users;
    params.seed = seed;
    if (heavy) {
      for (auto& group : params.groups) {
        group.task_weights[static_cast<int>(TaskKind::kSimulate)] *= 4.0;
        group.sim_input_bytes *= 2;
      }
    }
    ClusterConfig cluster;
    cluster.num_clients = clients;
    cluster.num_servers = servers;
    cluster.observability = obs_config;
    cluster.rpc.async = async_rpc;
    cluster.rpc.honest_wire = honest_wire;
    cluster.rpc.batching = rpc_batching;
    cluster.network.contention = net_contention;
    cluster.network.loss_rate = net_loss;
    cluster.replication.enabled = replication;
    cluster.rebalance.enabled = rebalance;
    cluster.sharding.policy = shard_policy;
    std::fprintf(stderr, "simulating %d min (+%d warmup) for %d users on %d clients...\n",
                 minutes, warmup, users, clients);
    generator = std::make_unique<Generator>(params, cluster);
    if (!fault_schedule.empty()) {
      try {
        ApplyFaultSchedule(generator->cluster(), fault_schedule);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "bad --crash-schedule: %s\n", e.what());
        return 2;
      }
    }
    trace = generator->Run(static_cast<SimDuration>(minutes) * kMinute,
                           static_cast<SimDuration>(warmup) * kMinute);
    obs = generator->cluster().observability();
    end_time = generator->queue().now();
    // Determinism witness (stderr, so stdout baselines are unaffected): the
    // kernel-level event count must not move under perf refactors.
    std::fprintf(stderr, "dispatched %llu events\n",
                 static_cast<unsigned long long>(generator->queue().dispatched_count()));
  } else {
    try {
      if (text) {
        std::ifstream in(path);
        if (!in) {
          std::fprintf(stderr, "cannot open %s\n", path.c_str());
          return 1;
        }
        trace = ParseText(in);
      } else {
        trace = ReadTraceFile(path);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to read %s: %s\n", path.c_str(), e.what());
      return 1;
    }
  }

  const TraceSummary s = Summarize(trace);
  std::printf("== Summary (Table 1 style) ==\n");
  std::printf("records %lld | %.2f hours | %lld users (%lld using migration)\n",
              static_cast<long long>(s.total_records), s.duration_hours(),
              static_cast<long long>(s.distinct_users),
              static_cast<long long>(s.migration_users));
  std::printf("read %.1f MB | written %.1f MB | dirs %.2f MB\n", s.mbytes_read(),
              s.mbytes_written(), s.mbytes_dir_read());
  std::printf("opens %lld | closes %lld | seeks %lld | deletes %lld | truncates %lld | "
              "shared r/w %lld/%lld\n\n",
              static_cast<long long>(s.open_events), static_cast<long long>(s.close_events),
              static_cast<long long>(s.seek_events), static_cast<long long>(s.delete_events),
              static_cast<long long>(s.truncate_events),
              static_cast<long long>(s.shared_read_events),
              static_cast<long long>(s.shared_write_events));

  const ActivityReport activity = ComputeActivity(trace, interval);
  std::printf("== Activity (Table 2 style, %.0f-second intervals) ==\n", ToSeconds(interval));
  std::printf("active users: %.1f avg (max %.0f) | throughput/user %.1f KB/s | peak user "
              "%.0f KB/s | peak total %.0f KB/s\n\n",
              activity.all_users.active_users.mean(), activity.all_users.active_users.max(),
              activity.all_users.throughput_per_user.mean() / 1024.0,
              activity.all_users.peak_user_throughput / 1024.0,
              activity.all_users.peak_total_throughput / 1024.0);

  const auto accesses = ExtractAccesses(trace);
  const AccessPatternStats patterns = ComputeAccessPatterns(accesses);
  std::printf("== Access patterns (Table 3 style) ==\n");
  std::printf("read-only %.1f%% | write-only %.1f%% | read-write %.1f%% of %lld accesses\n",
              patterns.read_only.accesses_fraction * 100,
              patterns.write_only.accesses_fraction * 100,
              patterns.read_write.accesses_fraction * 100,
              static_cast<long long>(patterns.total_accesses));
  std::printf("read-only sequentiality: %.0f%% whole-file, %.0f%% other-seq, %.1f%% random\n\n",
              patterns.read_only.whole_file * 100, patterns.read_only.other_sequential * 100,
              patterns.read_only.random * 100);

  const RunLengthCurves runs = ComputeRunLengths(accesses);
  const FileSizeCurves sizes = ComputeFileSizes(accesses);
  const WeightedSamples opens = ComputeOpenDurations(accesses);
  const LifetimeCurves lifetimes = ComputeLifetimes(trace);
  std::printf("== Distributions (Figures 1-4 style) ==\n");
  std::printf("runs: %.0f%% < 10 KB; %.0f%% of bytes in runs > 1 MB\n",
              runs.by_runs.FractionAtOrBelow(10 * kKilobyte) * 100,
              (1 - runs.by_bytes.FractionAtOrBelow(kMegabyte)) * 100);
  std::printf("sizes: %.0f%% of accesses < 1 KB; %.0f%% of bytes from files >= 1 MB\n",
              sizes.by_accesses.FractionAtOrBelow(kKilobyte) * 100,
              (1 - sizes.by_bytes.FractionAtOrBelow(kMegabyte)) * 100);
  std::printf("opens: %.0f%% < 0.25 s (median %.0f ms)\n",
              opens.FractionAtOrBelow(0.25) * 100, opens.Quantile(0.5) * 1000);
  std::printf("lifetimes: %.0f%% of files and %.0f%% of bytes dead within 30 s (%lld deaths)\n\n",
              lifetimes.by_files.FractionAtOrBelow(30) * 100,
              lifetimes.by_bytes.FractionAtOrBelow(30) * 100,
              static_cast<long long>(lifetimes.deaths_observed));

  std::printf("== Consistency simulations (Tables 11-12 style) ==\n");
  for (const SimDuration refresh : {60 * kSecond, 3 * kSecond}) {
    const PollingResult p = SimulatePolling(trace, refresh);
    std::printf("polling %2.0f s: %.1f stale reads/hour, %.0f%% users affected\n",
                ToSeconds(refresh), p.errors_per_hour(), p.affected_user_fraction() * 100);
  }
  for (const auto& [name, policy] :
       std::initializer_list<std::pair<const char*, ConsistencyPolicy>>{
           {"sprite", ConsistencyPolicy::kSprite},
           {"modified", ConsistencyPolicy::kSpriteModified},
           {"token", ConsistencyPolicy::kToken}}) {
    const OverheadResult o = SimulateConsistencyOverhead(trace, policy);
    std::printf("%-9s bytes ratio %.2f, RPC ratio %.2f over %lld shared events\n", name,
                o.byte_ratio(), o.rpc_ratio(), static_cast<long long>(o.events_requested));
  }

  if (simulate && !fault_schedule.empty()) {
    Cluster& c = generator->cluster();
    const StaleDataTracker& tracker = c.stale_tracker();
    std::printf("\n== Crash recovery and partitions (live cluster) ==\n");
    std::printf("injected: %lld server crash(es), %lld partition(s)",
                static_cast<long long>(fault_schedule.crashes.size()),
                static_cast<long long>(fault_schedule.partitions.size()));
    if (!fault_schedule.client_crashes.empty()) {
      std::printf(", %lld client crash(es)",
                  static_cast<long long>(fault_schedule.client_crashes.size()));
    }
    std::printf("\n");
    if (replication) {
      const double mean_failover_ms =
          c.failovers() > 0
              ? static_cast<double>(c.total_failover_us()) /
                    (static_cast<double>(c.failovers()) * 1000.0)
              : 0.0;
      std::printf("replication: %lld failover(s) (mean %.1f ms), %lld degraded crash(es), "
                  "%lld resync(s)\n",
                  static_cast<long long>(c.failovers()), mean_failover_ms,
                  static_cast<long long>(c.degraded_crashes()),
                  static_cast<long long>(c.resyncs()));
      const RpcLedger& ledger = c.rpc_ledger();
      const int64_t shadow_calls = ledger.stat(RpcKind::kShadowOpen).calls +
                                   ledger.stat(RpcKind::kShadowClose).calls +
                                   ledger.stat(RpcKind::kShadowWrite).calls;
      std::printf("replication: %.1f KB dirty preserved by fail-over | %lld shadow RPCs "
                  "(%.1f KB shadowed writeback)\n",
                  static_cast<double>(c.failover_preserved_bytes()) / 1024.0,
                  static_cast<long long>(shadow_calls),
                  static_cast<double>(ledger.stat(RpcKind::kShadowWrite).payload_bytes) /
                      1024.0);
    }
    for (int sv = 0; sv < c.num_servers(); ++sv) {
      const uint64_t epoch = c.server(static_cast<ServerId>(sv)).epoch();
      if (epoch > 1) {
        std::printf("server %d: epoch %llu\n", sv, static_cast<unsigned long long>(epoch));
      }
    }
    const RpcStat& reopen = c.rpc_ledger().stat(RpcKind::kReopen);
    std::printf("reopen RPCs: %lld (%lld retries, %lld blocked waits)\n",
                static_cast<long long>(reopen.calls), static_cast<long long>(reopen.retries),
                static_cast<long long>(reopen.blocked_waits));
    int stale_outstanding = 0;
    for (int cl = 0; cl < c.num_clients(); ++cl) {
      stale_outstanding += c.client(static_cast<ClientId>(cl)).stale_handle_count();
    }
    std::printf("stale handles outstanding: %d\n", stale_outstanding);
    std::printf("dropped callbacks: %lld | stale reads: %lld | clients affected: %lld\n",
                static_cast<long long>(tracker.dropped_callbacks()),
                static_cast<long long>(tracker.stale_reads()),
                static_cast<long long>(tracker.clients_affected().size()));
  }

  if (simulate && shard_report) {
    std::printf("\n%s", generator->cluster().ShardReport().c_str());
  }

  if (simulate) {
    if (rpc_ledger) {
      std::printf("\n== RPC transport ledger (live cluster) ==\n%s",
                  FormatRpcLedger(generator->cluster().rpc_ledger()).c_str());
    }
    if (honest_wire || rpc_batching || net_contention) {
      const Cluster& c = generator->cluster();
      const RpcLedger& ledger = c.rpc_ledger();
      const Network& net = c.network();
      // Busy time spans warmup too (the network is never reset), so
      // utilization is taken over the whole run, like the ablations do.
      const SimDuration elapsed =
          static_cast<SimDuration>(minutes + warmup) * kMinute;
      std::printf("\n== Wire (honest wire / contention) ==\n");
      std::printf("wire exchanges: %lld | piggybacked %lld | charged control %lld | "
                  "batched %lld ops in %lld batches\n",
                  static_cast<long long>(net.rpc_count()),
                  static_cast<long long>(ledger.piggybacked_ops),
                  static_cast<long long>(ledger.charged_control_ops),
                  static_cast<long long>(ledger.batched_ops),
                  static_cast<long long>(ledger.batches));
      std::printf("net busy %.1f s | utilization %.2f%%%s\n",
                  static_cast<double>(net.busy_time()) / 1e6,
                  net.Utilization(elapsed) * 100.0,
                  net.Saturated(elapsed) ? " [saturated]" : "");
      if (net_contention) {
        std::printf("contention: %lld queued transfer(s) (%.1f s waited) | "
                    "%lld retransmit(s)\n",
                    static_cast<long long>(net.contended_transfers()),
                    static_cast<double>(net.queued_time()) / 1e6,
                    static_cast<long long>(net.retransmits()));
      }
    }
  } else if (rpc_ledger || obs_config.enabled()) {
    if (obs_config.enabled()) {
      replay_obs = std::make_unique<Observability>(obs_config);
      obs = replay_obs.get();
      if (!trace.empty()) {
        end_time = trace.back().time;
      }
    }
    const RpcLedger ledger =
        ReplayTraceLedger(trace, NetworkConfig{}, replay_obs.get(), metrics_interval);
    if (rpc_ledger) {
      std::printf("\n== RPC transport ledger (replayed; reads are a no-cache upper bound) ==\n%s",
                  FormatRpcLedger(ledger).c_str());
    }
  }

  // Metric streams (windows, critical path, hot spots) go to --metrics-out
  // when given, so they never interleave with the paper tables on stdout.
  FILE* metrics_file = nullptr;
  FILE* msink = stdout;
  if (!metrics_out.empty()) {
    metrics_file = std::fopen(metrics_out.c_str(), "w");
    if (metrics_file == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
    msink = metrics_file;
  }
  if (metrics && obs != nullptr) {
    PrintMetrics(*obs, end_time, msink);
  }
  if (critical_path && obs != nullptr) {
    std::fprintf(msink, "\n== Critical path (where the time goes) ==\n%s",
                 FormatCriticalPath(obs->critical_path(),
                                    generator->cluster().rpc_ledger()).c_str());
  }
  if (hotspot_report && generator != nullptr) {
    std::fprintf(msink, "\n%s", generator->cluster().HotspotReport().c_str());
  }
  if (rebalance && generator != nullptr) {
    std::fprintf(msink, "\n%s", generator->cluster().RebalanceReport().c_str());
    const RpcLedger& ledger = generator->cluster().rpc_ledger();
    std::fprintf(msink,
                 "migration RPCs: %lld state / %lld dirty / %lld commit (%.1f KB moved on "
                 "the wire)\n",
                 static_cast<long long>(ledger.stat(RpcKind::kMigrateState).calls),
                 static_cast<long long>(ledger.stat(RpcKind::kMigrateDirty).calls),
                 static_cast<long long>(ledger.stat(RpcKind::kMigrateCommit).calls),
                 static_cast<double>(
                     ledger.stat(RpcKind::kMigrateState).payload_bytes +
                     ledger.stat(RpcKind::kMigrateDirty).payload_bytes +
                     ledger.stat(RpcKind::kMigrateCommit).payload_bytes) /
                     1024.0);
  }
  if (metrics_file != nullptr) {
    std::fclose(metrics_file);
    std::fprintf(stderr, "wrote metric streams to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty() && obs != nullptr) {
    if (!WriteTraceJson(*obs, trace_out)) {
      return 1;
    }
  }
  return 0;
}
