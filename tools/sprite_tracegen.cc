// sprite-tracegen: generate a synthetic Sprite-cluster trace to a file.
//
// Usage:
//   sprite_tracegen [options] <output.trace>
//     --users N        number of simulated users           (default 20)
//     --clients N      number of workstations              (default users+6)
//     --servers N      number of file servers              (default 4)
//     --minutes N      traced duration in minutes          (default 90)
//     --warmup N       untraced warmup minutes             (default 30)
//     --seed N         RNG seed                            (default 1991)
//     --heavy          use the large-file (simulation) mix
//     --text           write the human-readable text format
//
// The binary format is read back with sprite_analyze or trace::ReadTraceFile.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "src/trace/codec.h"
#include "src/trace/text_format.h"
#include "src/workload/generator.h"

using namespace sprite;

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: sprite_tracegen [--users N] [--clients N] [--servers N] [--minutes N]\n"
               "                       [--warmup N] [--seed N] [--heavy] [--text] OUTPUT\n");
}

}  // namespace

int main(int argc, char** argv) {
  int users = 20;
  int clients = -1;
  int servers = 4;
  int minutes = 90;
  int warmup = 30;
  uint64_t seed = 1991;
  bool heavy = false;
  bool text = false;
  std::string output;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_int = [&](int& out) {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      out = std::atoi(argv[++i]);
    };
    if (arg == "--users") {
      next_int(users);
    } else if (arg == "--clients") {
      next_int(clients);
    } else if (arg == "--servers") {
      next_int(servers);
    } else if (arg == "--minutes") {
      next_int(minutes);
    } else if (arg == "--warmup") {
      next_int(warmup);
    } else if (arg == "--seed") {
      int s = 0;
      next_int(s);
      seed = static_cast<uint64_t>(s);
    } else if (arg == "--heavy") {
      heavy = true;
    } else if (arg == "--text") {
      text = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      Usage();
      return 2;
    } else {
      output = arg;
    }
  }
  if (output.empty() || users <= 0 || servers <= 0 || minutes <= 0 || warmup < 0) {
    Usage();
    return 2;
  }
  if (clients < 0) {
    clients = users + 6;
  }

  WorkloadParams params;
  params.num_users = users;
  params.seed = seed;
  if (heavy) {
    for (auto& group : params.groups) {
      group.task_weights[static_cast<int>(TaskKind::kSimulate)] *= 4.0;
      group.sim_input_bytes *= 2;
    }
  }
  ClusterConfig cluster;
  cluster.num_clients = clients;
  cluster.num_servers = servers;

  std::fprintf(stderr, "generating %d min (+%d warmup) for %d users on %d clients...\n",
               minutes, warmup, users, clients);
  Generator generator(params, cluster);
  const TraceLog trace =
      generator.Run(static_cast<SimDuration>(minutes) * kMinute,
                    static_cast<SimDuration>(warmup) * kMinute);

  if (text) {
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", output.c_str());
      return 1;
    }
    DumpText(trace, out);
  } else {
    WriteTraceFile(output, trace);
  }
  std::fprintf(stderr, "wrote %zu records to %s\n", trace.size(), output.c_str());
  return 0;
}
